"""One-document survey report.

Turns a :class:`~repro.core.survey.SurveyResults` into a single markdown
document with every figure, table and population observation — the artifact
a measurement campaign would publish.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.analysis.figures import render_series, render_series_multi
from repro.analysis.tables import render_table1, render_table2
from repro.core.results import DeviceSeries
from repro.core.survey import SurveyResults
from repro.devices import catalog_profiles


def _udp_series(results, name: str) -> DeviceSeries:
    series = DeviceSeries(name, "s")
    for tag, result in results.items():
        if result.samples:
            series.add(tag, result.summary())
    return series


def _code_block(text: str) -> str:
    return "```\n" + text + "\n```"


def render_report(results: SurveyResults, title: str = "Home gateway survey") -> str:
    """Render whatever families ``results`` contains into markdown."""
    sections = [f"# {title}", ""]

    sections.append("## Device inventory (Table 1)")
    tags = _population_tags(results)
    profiles = [p for p in catalog_profiles() if not tags or p.tag in tags]
    if profiles:
        sections.append(_code_block(render_table1(profiles)))

    if results.udp1 or results.udp2 or results.udp3:
        sections.append("## UDP binding timeouts (Figures 2-5)")
        series = {}
        for name, data in (("UDP-1", results.udp1), ("UDP-2", results.udp2), ("UDP-3", results.udp3)):
            if data:
                series[name] = _udp_series(data, name)
        if series:
            order_key = "UDP-1" if "UDP-1" in series else next(iter(series))
            sections.append(
                _code_block(
                    render_series_multi(series, "median binding timeouts [s]", order=series[order_key].ordered_tags())
                )
            )
        for name, data in series.items():
            stats = data.population()
            sections.append(f"*{name}*: median {stats['median']:.1f} s, mean {stats['mean']:.1f} s")

    if results.udp4:
        sections.append("## UDP-4: port preservation and binding reuse")
        counts = Counter(behavior.category for behavior in results.udp4.values())
        for category, count in sorted(counts.items()):
            sections.append(f"- {category}: {count}")

    if results.udp5:
        sections.append("## UDP-5: per-service timeouts (Figure 6)")
        per_service = {
            service: _udp_series(data, service) for service, data in sorted(results.udp5.items())
        }
        any_series = next(iter(per_service.values()))
        sections.append(
            _code_block(render_series_multi(per_service, "per-service medians [s]", order=any_series.ordered_tags()))
        )

    if results.tcp1:
        sections.append("## TCP-1: idle binding timeouts (Figure 7)")
        series = DeviceSeries("TCP-1", "s")
        for tag, result in results.tcp1.items():
            if result.samples:
                series.add(tag, result.summary())
            else:
                series.add_censored(tag, result.cutoff)
        sections.append(_code_block(render_series(series, "TCP-1 [s]", log_scale=True, censored_label=">cutoff")))

    if results.tcp2:
        sections.append("## TCP-2/TCP-3: throughput and queuing delay (Figures 8-9)")
        from repro.core.throughput import ThroughputProbe

        probe = ThroughputProbe()
        throughput = {
            "down": probe.throughput_series(results.tcp2, "download"),
            "up": probe.throughput_series(results.tcp2, "upload"),
            "down(bi)": probe.throughput_series(results.tcp2, "download_bidir"),
            "up(bi)": probe.throughput_series(results.tcp2, "upload_bidir"),
        }
        sections.append(
            _code_block(render_series_multi(throughput, "throughput [Mb/s]", order=throughput["down"].ordered_tags()))
        )
        delay = {
            "down": probe.delay_series(results.tcp2, "download"),
            "up": probe.delay_series(results.tcp2, "upload"),
            "down(bi)": probe.delay_series(results.tcp2, "download_bidir"),
            "up(bi)": probe.delay_series(results.tcp2, "upload_bidir"),
        }
        sections.append(
            _code_block(render_series_multi(delay, "queuing delay [ms]", order=delay["down"].ordered_tags()))
        )

    if results.tcp4:
        sections.append("## TCP-4: binding capacity (Figure 10)")
        series = DeviceSeries("TCP-4", "bindings")
        from repro.core.results import Summary

        for tag, result in results.tcp4.items():
            series.add(tag, Summary.of([float(result.max_bindings)]))
        sections.append(_code_block(render_series(series, "max TCP bindings", log_scale=True)))

    if results.icmp and results.transports and results.dns:
        sections.append("## Other tests (Table 2)")
        sections.append(_code_block(render_table2(results.icmp, results.transports, results.dns)))

    if results.errors:
        sections.append("## Shard failures")
        sections.append(
            f"{len(results.errors)} device shard(s) produced no result; "
            "every figure above silently omits them."
        )
        rows = ["| device | family | error | message |", "|--------|--------|-------|---------|"]
        for error in results.errors:
            rows.append(
                f"| {error.tag} | {error.family or 'whole shard'} | {error.error} | {error.message} |"
            )
        sections.append("\n".join(rows))

    return "\n\n".join(sections) + "\n"


def _population_tags(results: SurveyResults) -> set:
    for family in (results.udp1, results.udp2, results.udp3, results.tcp1, results.tcp2, results.tcp4, results.icmp, results.dns):
        if family:
            return set(family)
    return set()
