"""One-document survey report.

Turns a :class:`~repro.core.survey.SurveyResults` into a single markdown
document with every figure, table and population observation — the artifact
a measurement campaign would publish.

The family-specific sections are not written here: each experiment family
registers a :class:`~repro.core.registry.ReportSection` next to its probe,
and this module renders whatever the registry holds, in section order.  A
family added to the registry appears in reports without touching this
package.  Only the campaign-level framing lives here — the Table 1 device
inventory up top and the shard-failure appendix at the bottom.
"""

from __future__ import annotations

from repro.analysis.tables import render_table1
from repro.core import registry
from repro.core.survey import SurveyResults
from repro.devices import catalog_profiles


def _code_block(text: str) -> str:
    return "```\n" + text + "\n```"


def render_report(results: SurveyResults, title: str = "Home gateway survey") -> str:
    """Render whatever families ``results`` contains into markdown."""
    sections = [f"# {title}", ""]

    sections.append("## Device inventory (Table 1)")
    tags = _population_tags(results)
    profiles = [p for p in catalog_profiles() if not tags or p.tag in tags]
    if profiles:
        sections.append(_code_block(render_table1(profiles)))

    for section in registry.report_sections():
        if not section.wants(results):
            continue
        rendered = section.render(results)
        if rendered:
            sections.append(rendered)

    if results.errors:
        sections.append("## Shard failures")
        sections.append(
            f"{len(results.errors)} device shard(s) produced no result; "
            "every figure above silently omits them."
        )
        rows = ["| device | family | error | message |", "|--------|--------|-------|---------|"]
        for error in results.errors:
            rows.append(
                f"| {error.tag} | {error.family or 'whole shard'} | {error.error} | {error.message} |"
            )
        sections.append("\n".join(rows))

    return "\n\n".join(sections) + "\n"


def _population_tags(results: SurveyResults) -> set:
    """The device tags the campaign measured, from any populated family."""
    for fam in registry.families():
        mapping = results.family(fam.name)
        if mapping:
            return set(fam.cells_of(mapping))
    return set()
