"""Renderings of the paper's tables.

:func:`render_table1` prints the device inventory; :func:`render_table2`
rebuilds the bullet matrix of "other tests" from the measured ICMP,
transport-support and DNS results.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.core.dns_tests import DnsProxyResult
from repro.core.icmp_tests import IcmpTestResult
from repro.core.transport_support import TransportSupportResult
from repro.devices.profile import DeviceProfile, ICMP_KINDS

#: Table 2 column order, as printed in the paper.
TABLE2_COLUMNS = (
    "dccp_conn",
    "dns_tcp",
    "dns_udp",
    "icmp_host_unreach",
    "sctp_conn",
    *[f"tcp_{kind}" for kind in ICMP_KINDS],
    *[f"udp_{kind}" for kind in ICMP_KINDS],
)

_SHORT_HEADERS = {
    "dccp_conn": "DCCP",
    "dns_tcp": "DnsT",
    "dns_udp": "DnsU",
    "icmp_host_unreach": "IcmpHU",
    "sctp_conn": "SCTP",
}


def render_table1(profiles: Sequence[DeviceProfile]) -> str:
    """Table 1: vendor, model, firmware, tag."""
    lines = ["Vendor       Model                    Firmware               Tag", "-" * 68]
    for profile in sorted(profiles, key=lambda p: (p.vendor.lower(), p.tag)):
        lines.append(f"{profile.vendor:<12} {profile.model:<24} {profile.firmware:<22} {profile.tag}")
    return "\n".join(lines)


def table2_cells(
    tag: str,
    icmp: IcmpTestResult,
    transports: Mapping[str, TransportSupportResult],
    dns: DnsProxyResult,
) -> Dict[str, bool]:
    """One device's Table-2 row as a column->bool mapping.

    A bullet in an ICMP column means the error was forwarded *as an ICMP
    message*; ls2's synthesized TCP RSTs do not earn bullets (the paper
    calls them invalid).
    """
    cells: Dict[str, bool] = {
        "dccp_conn": transports["dccp"].supported,
        "dns_tcp": dns.answers_tcp,
        "dns_udp": dns.answers_udp,
        "icmp_host_unreach": bool(icmp.icmp_host_unreach and icmp.icmp_host_unreach.forwarded),
        "sctp_conn": transports["sctp"].supported,
    }
    for kind in ICMP_KINDS:
        cells[f"tcp_{kind}"] = bool(icmp.tcp.get(kind) and icmp.tcp[kind].forwarded)
        cells[f"udp_{kind}"] = bool(icmp.udp.get(kind) and icmp.udp[kind].forwarded)
    return cells


def render_table2(
    icmp_results: Mapping[str, IcmpTestResult],
    transport_results: Mapping[str, Mapping[str, TransportSupportResult]],
    dns_results: Mapping[str, DnsProxyResult],
) -> str:
    """The full bullet matrix."""
    tags = sorted(icmp_results)
    headers = [_SHORT_HEADERS.get(col, col.replace("_", ".")[:10]) for col in TABLE2_COLUMNS]
    width = max(len(header) for header in headers)
    lines = []
    # Vertical headers would be unreadable in ASCII; use a legend instead.
    lines.append("columns: " + " ".join(f"{i + 1}={col}" for i, col in enumerate(TABLE2_COLUMNS)))
    lines.append("")
    lines.append(f"{'tag':>5}  " + " ".join(f"{i + 1:>3}" for i in range(len(TABLE2_COLUMNS))))
    for tag in tags:
        cells = table2_cells(tag, icmp_results[tag], transport_results[tag], dns_results[tag])
        row = " ".join(f"{'  *' if cells[col] else '  .'}" for col in TABLE2_COLUMNS)
        lines.append(f"{tag:>5}  {row}")
    totals = []
    for col in TABLE2_COLUMNS:
        count = sum(
            1
            for tag in tags
            if table2_cells(tag, icmp_results[tag], transport_results[tag], dns_results[tag])[col]
        )
        totals.append(count)
    lines.append(f"{'n':>5}  " + " ".join(f"{count:>3}" for count in totals))
    return "\n".join(lines)
