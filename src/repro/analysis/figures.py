"""ASCII renderings of the paper's figures.

Each figure in the paper is a per-device bar/point chart, devices on the
x-axis ordered by increasing value, with the population median/mean in the
legend.  :func:`render_series` prints the same content as rows — one device
per line with a scaled bar — which diffs nicely in terminals and test logs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.core.results import DeviceSeries

_BAR_WIDTH = 40


def _format_value(value: float) -> str:
    if value >= 100:
        return f"{value:8.1f}"
    return f"{value:8.2f}"


def _bar(value: float, maximum: float, log_scale: bool) -> str:
    if maximum <= 0:
        return ""
    if log_scale:
        scaled = math.log10(max(value, 1.0)) / math.log10(max(maximum, 10.0))
    else:
        scaled = value / maximum
    return "#" * max(int(scaled * _BAR_WIDTH), 1 if value > 0 else 0)


def render_series(
    series: DeviceSeries,
    title: str,
    log_scale: bool = False,
    censored_label: str = ">cutoff",
) -> str:
    """One figure: device rows ordered by increasing median, with quartiles."""
    lines = [title, "-" * len(title)]
    medians = series.medians()
    maximum = max(medians.values()) if medians else 1.0
    for tag in series.ordered_tags():
        if tag in series.summaries:
            summary = series.summaries[tag]
            bar = _bar(summary.median, maximum, log_scale)
            lines.append(
                f"{tag:>5}  {_format_value(summary.median)} {series.unit:<8} "
                f"[q1={summary.q1:8.2f} q3={summary.q3:8.2f}]  {bar}"
            )
        else:
            lines.append(f"{tag:>5}  {censored_label:>8} {series.unit:<8} " f"[cutoff={series.censored[tag]:.0f}]")
    if medians:
        population = series.population()
        lines.append(
            f"population: median={population['median']:.2f} mean={population['mean']:.2f} "
            f"min={population['min']:.2f} max={population['max']:.2f} ({series.unit}; measured devices only)"
        )
    return "\n".join(lines)


def render_series_multi(
    series_by_label: Dict[str, DeviceSeries],
    title: str,
    order: Optional[Sequence[str]] = None,
) -> str:
    """Several series side by side (Figure 2's UDP-1/2/3 overview,
    Figure 6's per-service rows, Figure 8's four throughput variants)."""
    labels = list(series_by_label)
    if not labels:
        raise ValueError("no series to render")
    first = series_by_label[labels[0]]
    tags = list(order if order is not None else first.ordered_tags())
    header = f"{'tag':>5}  " + "  ".join(f"{label:>12}" for label in labels)
    lines = [title, "-" * len(title), header]
    for tag in tags:
        cells = []
        for label in labels:
            series = series_by_label[label]
            if tag in series.summaries:
                cells.append(f"{series.summaries[tag].median:12.2f}")
            elif tag in series.censored:
                cells.append(f"{'>cutoff':>12}")
            else:
                cells.append(f"{'-':>12}")
        lines.append(f"{tag:>5}  " + "  ".join(cells))
    return "\n".join(lines)


def code_block(text: str) -> str:
    """Wrap a rendered figure/table in a markdown code fence."""
    return "```\n" + text + "\n```"


def timeout_series(
    results: Dict[str, object],
    name: str,
    unit: str = "s",
    cutoff: Optional[float] = None,
) -> DeviceSeries:
    """A :class:`DeviceSeries` from per-device timeout-style results.

    Works for any result type with ``samples``/``summary()`` (UDP and TCP
    timeout families); devices without samples are censored at ``cutoff``
    when one is given, else omitted.  Shared by the registry's report hooks
    and the CLI's probe renderers.
    """
    series = DeviceSeries(name, unit)
    for tag, result in results.items():
        if result.samples:
            series.add(tag, result.summary())
        elif cutoff is not None:
            series.add_censored(tag, cutoff)
    return series


def series_to_csv(series: DeviceSeries) -> str:
    """Machine-readable export: tag, median, q1, q3, n, censored."""
    rows: List[str] = ["tag,median,q1,q3,samples,censored_at"]
    for tag in series.ordered_tags():
        if tag in series.summaries:
            summary = series.summaries[tag]
            rows.append(f"{tag},{summary.median},{summary.q1},{summary.q3},{summary.count},")
        else:
            rows.append(f"{tag},,,,,{series.censored[tag]}")
    return "\n".join(rows)
