"""Rendering and paper-comparison utilities.

Turns :class:`~repro.core.results.DeviceSeries` and the Table-2-style
results into the artifacts the paper prints: device-ordered figure rows
(ASCII), the bullet table, population statistic lines, and side-by-side
paper-vs-measured comparisons.
"""

from repro.analysis.figures import render_series, render_series_multi, series_to_csv
from repro.analysis.report import render_report
from repro.analysis.tables import render_table1, render_table2
from repro.analysis.compare import (
    ComparisonRow,
    compare_orderings,
    compare_population,
    kendall_tau,
    render_comparison,
)

__all__ = [
    "kendall_tau",
    "render_comparison",
    "render_report",
    "render_series",
    "render_series_multi",
    "series_to_csv",
    "render_table1",
    "render_table2",
    "ComparisonRow",
    "compare_orderings",
    "compare_population",
]
