"""The adversarial experiment families: ``attack_portflood``,
``attack_keepalive`` and ``attack_rst``.

All three run against a :class:`~repro.cgn.topology.Nat444Topology` — the
ReDAN threat model is precisely "hostile traffic on a *shared* NAT chain"
— and measure the attack's collateral damage on the innocent subscribers:
Jain fairness over what the innocents could still establish, survival of
their pre-existing flows, and the time from attack start to the first
refusal/teardown at each NAT tier.

* **attack_portflood** — subscriber 1's client is compromised and floods
  the chain with distinct-source-port UDP datagrams and TCP SYNs.  Every
  packet opens a binding at the home gateway (bounded by its session
  table, binding-rate limiter or port pool — whichever the device hits
  first) and at the CGN (bounded by the per-subscriber block quota, then
  the shared pool).  The other subscribers keep trying to open flows
  throughout; with a quota-protected pool the damage is contained (the
  RFC 6888 argument for block quotas), while a pool small enough for one
  quota to drain collapses everyone — both regimes are reachable through
  the ``cgn_subscribers``/``cgn_block_size`` knobs.

* **attack_keepalive** — every subscriber parks an idle UDP flow; an
  off-path attacker spoofing the flows' remote address (with a wrong
  source port — a blind attacker doesn't know the real one) sweeps the
  CGN's external pool with keepalives.  The CGN's ADDRESS_DEPENDENT
  filter passes the spoofs (address matches), so the home tier's
  filtering policy decides the outcome: EIF/ADM devices let the spoof
  refresh the binding — or *shift its state* to ``after_inbound``, whose
  shorter timeout on some devices evicts the flow early — while APDF
  devices filter it and the flow ages naturally.  Half the victims are
  probed after the natural timeout (refresh evidence), half before it
  (eviction evidence).

* **attack_rst** — every subscriber parks an established TCP connection;
  the attacker sweeps the pool with forged RSTs (blind source port and
  sequence number).  NATs with ``rst_clears`` tear the binding on any
  RST; endpoints apply RFC 793 sequence validation and ignore the same
  segment.  The CGN tier tears every swept binding — the shared tier
  makes every subscriber vulnerable regardless of how defensive their own
  CPE is — while the per-device columns (``home_torn``/``home_filtered``)
  show which CPEs would have protected a single-tier deployment.

Determinism: the attacker draws no RNG, flood source ports and scan
sweeps are fixed sequences, and pacing is pure arithmetic on the knobs —
so ``jobs=N ≡ jobs=1``, resume byte-identity and staged-engine parity all
hold by construction (and are pinned by ``tests/test_attack.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Mapping, Optional, Sequence

from repro.attack.node import AttackerNode
from repro.cgn.families import jain_fairness, nat444_factory
from repro.cgn.topology import Nat444Topology
from repro.core import registry
from repro.core.runtime import Future, SimTask, run_tasks
from repro.core.tcp_binding import ESTABLISH_TIMEOUT, _Tcp1Server
from repro.core.udp_timeouts import _Responder
from repro.gateway.nat import STATE_OUTBOUND_ONLY
from repro.testbed.testrund import ManagementChannel, Testrund

__all__ = [
    "AttackPortfloodResult",
    "AttackPortfloodProbe",
    "AttackKeepaliveResult",
    "AttackKeepaliveProbe",
    "AttackRstResult",
    "AttackRstProbe",
]

#: Victim/innocent measurement services (distinct from the CGN families'
#: ports so the two campaigns can share a store without socket collisions).
ATTACK_UDP_PORT = 36700
ATTACK_TCP_PORT = 36701
#: Where the flood's SYN half aims: a DROP-firewalled port on the target.
#: A responding port would defeat the attack — the server's SYN|ACK or RST
#: travels back through the chain and ``rst_clears`` NATs tear the binding
#: the SYN just opened.  Real flooders aim at filtered ports for exactly
#: this reason; the probe models the firewall with a server-side intercept.
ATTACK_SYN_PORT = 36702
#: The spoofed *source* port of keepalive/RST sweeps: a blind off-path
#: attacker knows the victim's remote address, not its remote port.
SPOOF_SRC_PORT = 36999
#: First source port of the flood sequence (one port per packet).
FLOOD_SRC_BASE = 20000
DEFAULT_ATTACK_RATE = 50.0
DEFAULT_ATTACK_DURATION = 20.0
DEFAULT_GRACE = 2.0
#: Establishment attempts for one innocent/victim flow.
ESTABLISH_ATTEMPTS = 2


# ---------------------------------------------------------------------------
# attack_portflood
# ---------------------------------------------------------------------------


@dataclass
class AttackPortfloodResult:
    """Collateral profile of one segment under a binding-exhaustion flood."""

    tag: str
    subscribers: int
    attack_rate: float
    attack_duration: float
    pool_ports: int
    #: Flood packets injected (alternating UDP datagrams and TCP SYNs).
    attack_packets: int = 0
    #: Seconds from flood start to the *attacker's home gateway* first
    #: refusing a binding (None = the device absorbed the whole flood).
    home_onset: Optional[float] = None
    #: What refused first at the home tier (table_full / rate_limited /
    #: port_exhausted) — the device's binding bottleneck under attack.
    home_cause: Optional[str] = None
    #: Seconds from flood start to the CGN's first port-pool refusal.
    cgn_onset: Optional[float] = None
    #: Total bindings the attacker's home gateway refused during the flood.
    home_refused: int = 0
    #: CGN port-pool refusals during the flood, per protocol (the new
    #: per-proto accounting: the SYN half of the flood cannot mask the UDP
    #: half's exhaustion, or vice versa).
    cgn_refused_udp: int = 0
    cgn_refused_tcp: int = 0
    #: Fresh flows each innocent subscriber established / was refused
    #: while the flood ran (index 0 = subscriber 2, and so on).
    innocent_flows: List[int] = field(default_factory=list)
    innocent_refused: List[int] = field(default_factory=list)
    #: Jain's index over ``innocent_flows``.
    fairness: float = 0.0
    #: Fraction of the innocents' pre-attack flows still alive afterwards.
    victim_survival: float = 0.0


class AttackPortfloodProbe:
    """Flood one subscriber's chain; measure what the others lose."""

    #: Innocents re-try this many flows, evenly spread over the flood.
    INNOCENT_ROUNDS = 6

    def __init__(
        self,
        rate: float = DEFAULT_ATTACK_RATE,
        duration: float = DEFAULT_ATTACK_DURATION,
        grace: float = DEFAULT_GRACE,
    ):
        if rate <= 0:
            raise ValueError(f"attack rate must be positive, got {rate}")
        if duration <= 0:
            raise ValueError(f"attack duration must be positive, got {duration}")
        self.rate = rate
        self.duration = duration
        self.grace = grace

    def run_all(
        self, bed: Nat444Topology, tags: Optional[Sequence[str]] = None
    ) -> Dict[str, AttackPortfloodResult]:
        tags = list(tags if tags is not None else bed.tags())
        self._flows = itertools.count(1)
        channel = ManagementChannel(bed.sim)
        daemon = Testrund("server", channel)
        responder = _Responder(bed, ATTACK_UDP_PORT)
        daemon.register("respond", responder.respond)
        results = {
            tag: AttackPortfloodResult(
                tag,
                subscribers=bed.subscribers,
                attack_rate=self.rate,
                attack_duration=self.duration,
                pool_ports=bed.cgn_policy.pool_ports,
            )
            for tag in tags
        }
        tasks = [
            SimTask(bed.sim, self._segment_task(bed, tag, responder, daemon, results[tag]), name=f"attack_portflood:{tag}")
            for tag in tags
        ]
        run_tasks(bed.sim, tasks)
        responder.detach()
        return results

    def _open_flow(self, bed, segment, tag: str, subscriber: int, responder: _Responder) -> Generator:
        """Open (and keep) one verified UDP flow; returns (socket, id, ok)."""
        iface = bed.client_iface(tag, subscriber)
        socket = bed.client.udp.bind(0, iface.index)
        flow_id = None
        for _attempt in range(ESTABLISH_ATTEMPTS):
            flow_id = next(self._flows)
            arrival = responder.expect(flow_id, timeout=self.grace)
            socket.send_to(flow_id.to_bytes(8, "big"), segment.server_ip, ATTACK_UDP_PORT)
            endpoint = yield arrival
            if endpoint is not None:
                return socket, flow_id, True
        return socket, flow_id, False

    def _segment_task(
        self,
        bed: Nat444Topology,
        tag: str,
        responder: _Responder,
        daemon: Testrund,
        result: AttackPortfloodResult,
    ) -> Generator:
        segment = bed.segment(tag)
        innocents = list(range(2, bed.subscribers + 1))
        # Phase 0: every innocent parks one verified flow (held open — the
        # survival sentinels the flood must not kill).
        pre = []
        for subscriber in innocents:
            opened = yield from self._open_flow(bed, segment, tag, subscriber, responder)
            pre.append(opened)
        # Phase 1+2, concurrently: the flood, and the innocents' retries.
        flood_done = Future()
        SimTask(
            bed.sim,
            self._flood(bed, segment, tag, result, flood_done),
            name=f"attack_flood:{tag}",
        )
        counters = [[0, 0] for _ in innocents]
        innocent_done: List[Future] = []
        for slot, subscriber in enumerate(innocents):
            done = Future()
            innocent_done.append(done)
            SimTask(
                bed.sim,
                self._innocent(bed, segment, tag, subscriber, responder, counters[slot], done),
                name=f"attack_innocent:{tag}:{subscriber}",
            )
        yield flood_done
        for done in innocent_done:
            yield done
        # Phase 3: do the pre-attack flows still pass traffic?
        alive = 0
        total = 0
        for socket, flow_id, ok in pre:
            if ok:
                total += 1
                got = Future(timeout=self.grace)

                def on_reply(payload: bytes, _ip, _port, got: Future = got, flow_id: int = flow_id) -> None:
                    if len(payload) >= 8 and int.from_bytes(payload[0:8], "big") == flow_id:
                        got.set_result(True)

                socket.on_receive = on_reply
                daemon.invoke("respond", flow_id, 0)
                if (yield got):
                    alive += 1
            socket.close()
        result.innocent_flows = [established for established, _refused in counters]
        result.innocent_refused = [refused for _established, refused in counters]
        result.fairness = jain_fairness(result.innocent_flows)
        result.victim_survival = (alive / total) if total else 0.0

    def _flood(
        self,
        bed: Nat444Topology,
        segment,
        tag: str,
        result: AttackPortfloodResult,
        done: Future,
    ) -> Generator:
        home = segment.homes[0].gateway.nat  # the attacker's own gateway
        cgn = segment.cgn.nat
        count = int(round(self.rate * self.duration))
        # One source port per packet, bounded to the flood's own range so
        # the shield can never eat an innocent's traffic.
        count = min(count, 65535 - FLOOD_SRC_BASE)
        interval = 1.0 / self.rate
        attacker = AttackerNode(
            bed.client, bed.client_iface(tag, 1).index, label=f"flood:{tag}"
        )
        attacker.shield(FLOOD_SRC_BASE, FLOOD_SRC_BASE + count)
        # The target's firewall DROPs the SYN port: the SYN still opens a
        # transitory binding at every NAT tier it crosses, and nothing comes
        # back to clear it.
        unfirewall = bed.server.install_intercept(
            lambda packet, _iface: getattr(packet.payload, "dst_port", None) == ATTACK_SYN_PORT
        )
        client_ip = bed.client_ip(tag, 1)
        home_before = home.bindings_refused + home.bindings_rate_refused + home.bindings_port_exhausted
        cgn_udp_before = cgn.port_exhausted_for("udp")
        cgn_tcp_before = cgn.port_exhausted_for("tcp")
        start = bed.sim.now
        try:
            for ordinal in range(count):
                src_port = FLOOD_SRC_BASE + ordinal
                if ordinal % 2 == 0:
                    attacker.send_udp(client_ip, src_port, segment.server_ip, ATTACK_UDP_PORT)
                else:
                    attacker.send_syn(client_ip, src_port, segment.server_ip, ATTACK_SYN_PORT)
                yield interval
                if result.home_onset is None:
                    refused = home.bindings_refused + home.bindings_rate_refused + home.bindings_port_exhausted
                    if refused > home_before:
                        result.home_onset = bed.sim.now - start
                        result.home_cause = home.refusal_cause("udp") or home.refusal_cause("tcp")
                if result.cgn_onset is None and (
                    cgn.port_exhausted_for("udp") > cgn_udp_before
                    or cgn.port_exhausted_for("tcp") > cgn_tcp_before
                ):
                    result.cgn_onset = bed.sim.now - start
        finally:
            attacker.unshield()
            unfirewall()
        result.attack_packets = attacker.packets_sent
        result.home_refused = (
            home.bindings_refused + home.bindings_rate_refused + home.bindings_port_exhausted
        ) - home_before
        result.cgn_refused_udp = cgn.port_exhausted_for("udp") - cgn_udp_before
        result.cgn_refused_tcp = cgn.port_exhausted_for("tcp") - cgn_tcp_before
        done.set_result(True)

    def _innocent(
        self,
        bed: Nat444Topology,
        segment,
        tag: str,
        subscriber: int,
        responder: _Responder,
        counter: List[int],
        done: Future,
    ) -> Generator:
        interval = self.duration / self.INNOCENT_ROUNDS
        for _round in range(self.INNOCENT_ROUNDS):
            yield interval
            flow_id = next(self._flows)
            iface = bed.client_iface(tag, subscriber)
            socket = bed.client.udp.bind(0, iface.index)
            arrival = responder.expect(flow_id, timeout=self.grace)
            socket.send_to(flow_id.to_bytes(8, "big"), segment.server_ip, ATTACK_UDP_PORT)
            endpoint = yield arrival
            if endpoint is None:
                counter[1] += 1
            else:
                counter[0] += 1
            # The socket closes but its bindings live on until the tiers
            # time them out — contention the flood has to beat, as in life.
            socket.close()
        done.set_result(True)


# ---------------------------------------------------------------------------
# attack_keepalive
# ---------------------------------------------------------------------------


@dataclass
class AttackKeepaliveResult:
    """Spoofed-keepalive outcome for one segment's victim population."""

    tag: str
    subscribers: int
    #: The device's filtering behaviour (the attack's gatekeeper).
    filtering: str
    #: Natural idle life of an untouched victim flow: min across tiers.
    natural_timeout: float
    scans: int = 0
    spoofed_packets: int = 0
    #: Victims probed *after* the natural timeout that were still alive —
    #: the spoofs kept their bindings refreshed from off-path.
    refreshed: int = 0
    refreshed_total: int = 0
    #: Victims probed *before* the natural timeout that were already dead —
    #: the spoof shifted the binding into a shorter-lived state (eviction).
    evicted: int = 0
    evicted_total: int = 0
    #: Spoofed keepalives the home tier's filtering discarded.
    home_filtered: int = 0
    #: Seconds from flow establishment to the first sweep that crossed a
    #: home gateway (None = every spoof was filtered).
    onset: Optional[float] = None
    fairness: float = 0.0
    victim_survival: float = 0.0


class AttackKeepaliveProbe:
    """Sweep spoofed keepalives over the CGN pool; probe victim flows."""

    #: Sweep instants as fractions of the earliest natural timeout.
    SCAN_FRACTIONS = (0.45, 0.9, 1.35)
    #: Eviction probe instant (before natural death; after the first sweep).
    MID_FRACTION = 0.8
    #: Refresh probe: past every tier's natural upper bound by this factor.
    LATE_FRACTION = 1.75

    def __init__(self, grace: float = DEFAULT_GRACE):
        self.grace = grace

    def run_all(
        self, bed: Nat444Topology, tags: Optional[Sequence[str]] = None
    ) -> Dict[str, AttackKeepaliveResult]:
        tags = list(tags if tags is not None else bed.tags())
        self._flows = itertools.count(1)
        channel = ManagementChannel(bed.sim)
        daemon = Testrund("server", channel)
        responder = _Responder(bed, ATTACK_UDP_PORT)
        daemon.register("respond", responder.respond)
        results = {}
        for tag in tags:
            profile = bed.segment(tag).profile
            device_timeout = profile.udp_timeouts.timeout_for(STATE_OUTBOUND_ONLY, ATTACK_UDP_PORT)
            results[tag] = AttackKeepaliveResult(
                tag,
                subscribers=bed.subscribers,
                filtering=profile.nat.filtering.value,
                natural_timeout=min(device_timeout, bed.cgn_policy.udp_timeout),
            )
        tasks = [
            SimTask(bed.sim, self._segment_task(bed, tag, responder, daemon, results[tag]), name=f"attack_keepalive:{tag}")
            for tag in tags
        ]
        run_tasks(bed.sim, tasks)
        responder.detach()
        return results

    def _segment_task(
        self,
        bed: Nat444Topology,
        tag: str,
        responder: _Responder,
        daemon: Testrund,
        result: AttackKeepaliveResult,
    ) -> Generator:
        segment = bed.segment(tag)
        policy = bed.cgn_policy
        profile = segment.profile
        victims = list(range(1, bed.subscribers + 1))
        flows: List[Optional[int]] = []
        sockets = []
        for subscriber in victims:
            iface = bed.client_iface(tag, subscriber)
            socket = bed.client.udp.bind(0, iface.index)
            sockets.append(socket)
            flow_id = None
            for _attempt in range(ESTABLISH_ATTEMPTS):
                candidate = next(self._flows)
                arrival = responder.expect(candidate, timeout=self.grace)
                socket.send_to(candidate.to_bytes(8, "big"), segment.server_ip, ATTACK_UDP_PORT)
                endpoint = yield arrival
                if endpoint is not None:
                    flow_id = candidate
                    break
            flows.append(flow_id)
        # The timeline: sweep before the earliest natural death, probe the
        # "mid" group before it and the "late" group past every tier's
        # natural upper bound (device granularity rounds deadlines up).
        low = result.natural_timeout
        high = min(
            profile.udp_timeouts.timeout_for(STATE_OUTBOUND_ONLY, ATTACK_UDP_PORT)
            + profile.udp_timeouts.timer_granularity,
            policy.udp_timeout + policy.timer_granularity,
        )
        established_at = bed.sim.now
        scan_times = [fraction * low for fraction in self.SCAN_FRACTIONS]
        mid_at = self.MID_FRACTION * low
        late_at = max(self.LATE_FRACTION * low, high + 0.5 * low)
        attacker = AttackerNode(
            bed.server, segment.server_iface_index, label=f"keepalive:{tag}"
        )
        cgn_ip = segment.cgn.wan_ip
        pool_lo = policy.first_external_port
        pool_hi = pool_lo + policy.pool_ports
        homes = segment.homes

        def filtered_total() -> int:
            return sum(home.gateway.nat.inbound_filtered for home in homes)

        def delivered_total() -> int:
            return sum(home.gateway.forwarded_down for home in homes)

        filtered_before = filtered_total()
        # Interleave sweeps and probes on one absolute-time schedule.
        events = sorted(
            [(when, "scan") for when in scan_times] + [(mid_at, "mid"), (late_at, "late")]
        )
        mid_alive = 0
        mid_total = 0
        late_alive = 0
        late_total = 0
        for when, kind in events:
            delay = established_at + when - bed.sim.now
            if delay > 0:
                yield delay
            if kind == "scan":
                delivered_before = delivered_total()
                for port in range(pool_lo, pool_hi):
                    # Spoofed source: the victims' remote address with a
                    # blind port.  The CGN's ADDRESS_DEPENDENT filter passes
                    # it; the home tier's filtering policy gets the last word.
                    attacker.send_udp(segment.server_ip, SPOOF_SRC_PORT, cgn_ip, port)
                result.scans += 1
                yield 0.5  # let the sweep cross (or die in) the chain
                if result.onset is None and delivered_total() > delivered_before:
                    result.onset = bed.sim.now - established_at
                continue
            # Probe half the victims: odd subscriber ordinals late (refresh
            # evidence), even ones mid-timeline (eviction evidence).
            for slot, subscriber in enumerate(victims):
                in_late = subscriber % 2 == 1
                if (kind == "late") != in_late:
                    continue
                flow_id = flows[slot]
                if flow_id is None:
                    continue
                socket = sockets[slot]
                got = Future(timeout=self.grace)

                def on_reply(payload: bytes, _ip, _port, got: Future = got, flow_id: int = flow_id) -> None:
                    if len(payload) >= 8 and int.from_bytes(payload[0:8], "big") == flow_id:
                        got.set_result(True)

                socket.on_receive = on_reply
                daemon.invoke("respond", flow_id, 0)
                alive = bool((yield got))
                if kind == "late":
                    late_total += 1
                    late_alive += 1 if alive else 0
                else:
                    mid_total += 1
                    mid_alive += 1 if alive else 0
        for socket in sockets:
            socket.close()
        result.spoofed_packets = attacker.udp_sent
        result.home_filtered = filtered_total() - filtered_before
        result.refreshed = late_alive
        result.refreshed_total = late_total
        result.evicted = mid_total - mid_alive
        result.evicted_total = mid_total
        probed_alive = mid_alive + late_alive
        probed = mid_total + late_total
        result.victim_survival = (probed_alive / probed) if probed else 0.0
        result.fairness = jain_fairness(
            [1] * probed_alive + [0] * (probed - probed_alive)
        )


# ---------------------------------------------------------------------------
# attack_rst
# ---------------------------------------------------------------------------


@dataclass
class AttackRstResult:
    """Off-path RST teardown outcome for one segment's victims."""

    tag: str
    subscribers: int
    filtering: str
    #: TCP connections established before the sweep.
    victims: int = 0
    spoofed_rsts: int = 0
    #: Victim bindings torn down at the CGN tier (rst_clears, no sequence
    #: check — the shared tier falls for every swept port).
    cgn_torn: int = 0
    #: Victim bindings torn down at their home gateways (EIF/ADM devices
    #: forward the spoof inward; APDF devices filter it).
    home_torn: int = 0
    #: Spoofed RSTs the home tier's filtering discarded.
    home_filtered: int = 0
    #: Victim endpoints that actually reset (RFC 793 window check: ~none).
    victims_reset: int = 0
    #: Seconds from sweep start to the first CGN binding teardown.
    onset: Optional[float] = None
    #: Victims whose connection still passed data after the sweep.
    survived: int = 0
    fairness: float = 0.0
    victim_survival: float = 0.0


class AttackRstProbe:
    """Sweep forged RSTs over the CGN pool; then poke every victim flow."""

    #: The attacker's blind sequence guess; the endpoints' 64 KB receive
    #: windows sit in the low 2^32 space, so this is ~surely out-of-window.
    BLIND_SEQ = 0x20000000

    def __init__(self, rate: float = DEFAULT_ATTACK_RATE, grace: float = DEFAULT_GRACE):
        if rate <= 0:
            raise ValueError(f"attack rate must be positive, got {rate}")
        self.rate = rate
        self.grace = grace

    def run_all(
        self, bed: Nat444Topology, tags: Optional[Sequence[str]] = None
    ) -> Dict[str, AttackRstResult]:
        tags = list(tags if tags is not None else bed.tags())
        self._nonces = itertools.count(1)
        channel = ManagementChannel(bed.sim)
        daemon = Testrund("server", channel)
        tcp_server = _Tcp1Server(bed, ATTACK_TCP_PORT)
        daemon.register("tcp_respond", tcp_server.respond)
        daemon.register("tcp_abort", tcp_server.abort)
        results = {
            tag: AttackRstResult(
                tag,
                subscribers=bed.subscribers,
                filtering=bed.segment(tag).profile.nat.filtering.value,
            )
            for tag in tags
        }
        tasks = [
            SimTask(bed.sim, self._segment_task(bed, tag, daemon, results[tag]), name=f"attack_rst:{tag}")
            for tag in tags
        ]
        run_tasks(bed.sim, tasks)
        return results

    def _segment_task(
        self, bed: Nat444Topology, tag: str, daemon: Testrund, result: AttackRstResult
    ) -> Generator:
        segment = bed.segment(tag)
        policy = bed.cgn_policy
        victims = []
        for subscriber in range(1, bed.subscribers + 1):
            iface = bed.client_iface(tag, subscriber)
            nonce = next(self._nonces)
            established = Future(timeout=ESTABLISH_TIMEOUT)
            conn = bed.client.tcp.connect(segment.server_ip, ATTACK_TCP_PORT, iface_index=iface.index)
            conn.on_established = established.set_result
            ok = yield established
            if not ok:
                conn.abort()
                continue
            conn.send(nonce.to_bytes(8, "big"))
            victims.append((subscriber, nonce, conn))
        yield 0.5  # let the nonces (and their ACKs) clear both tiers
        result.victims = len(victims)
        cgn = segment.cgn.nat
        homes = segment.homes
        cgn_before = cgn.binding_count("tcp")
        home_before = [home.gateway.nat.binding_count("tcp") for home in homes]
        filtered_before = sum(home.gateway.nat.inbound_filtered for home in homes)
        attacker = AttackerNode(
            bed.server, segment.server_iface_index, label=f"rst:{tag}"
        )
        cgn_ip = segment.cgn.wan_ip
        interval = 1.0 / self.rate
        start = bed.sim.now
        for port in range(policy.first_external_port, policy.first_external_port + policy.pool_ports):
            attacker.send_rst(segment.server_ip, SPOOF_SRC_PORT, cgn_ip, port, seq=self.BLIND_SEQ)
            yield interval
            if result.onset is None and cgn.binding_count("tcp") < cgn_before:
                result.onset = bed.sim.now - start
        yield 1.0  # let the tail of the sweep land
        result.spoofed_rsts = attacker.rst_sent
        result.cgn_torn = max(0, cgn_before - cgn.binding_count("tcp"))
        result.home_torn = sum(
            1
            for before, home in zip(home_before, homes)
            if home.gateway.nat.binding_count("tcp") < before
        )
        result.home_filtered = (
            sum(home.gateway.nat.inbound_filtered for home in homes) - filtered_before
        )
        survived = 0
        for _subscriber, nonce, conn in victims:
            if conn.state == "CLOSED":
                result.victims_reset += 1
            data_arrived = Future(timeout=self.grace)
            conn.on_data = lambda _data, got=data_arrived: got.set_result(True)
            daemon.invoke("tcp_respond", nonce)
            if (yield data_arrived):
                survived += 1
            daemon.invoke("tcp_abort", nonce)
            conn.abort()
        result.survived = survived
        result.victim_survival = (survived / len(victims)) if victims else 0.0
        result.fairness = jain_fairness(
            [1] * survived + [0] * (len(victims) - survived)
        )


# ---------------------------------------------------------------------------
# Registry: codecs, descriptors, report section.
# ---------------------------------------------------------------------------


def _attack_knobs(knobs: Mapping) -> Dict[str, float]:
    return {
        "rate": float(knobs.get("attack_rate", DEFAULT_ATTACK_RATE)),
        "duration": float(knobs.get("attack_duration", DEFAULT_ATTACK_DURATION)),
    }


def encode_portflood_result(result: AttackPortfloodResult) -> Dict:
    return {
        "tag": result.tag,
        "subscribers": result.subscribers,
        "attack_rate": result.attack_rate,
        "attack_duration": result.attack_duration,
        "pool_ports": result.pool_ports,
        "attack_packets": result.attack_packets,
        "home_onset": result.home_onset,
        "home_cause": result.home_cause,
        "cgn_onset": result.cgn_onset,
        "home_refused": result.home_refused,
        "cgn_refused_udp": result.cgn_refused_udp,
        "cgn_refused_tcp": result.cgn_refused_tcp,
        "innocent_flows": list(result.innocent_flows),
        "innocent_refused": list(result.innocent_refused),
        "fairness": result.fairness,
        "victim_survival": result.victim_survival,
    }


def decode_portflood_result(payload: Dict) -> AttackPortfloodResult:
    return AttackPortfloodResult(
        tag=payload["tag"],
        subscribers=int(payload["subscribers"]),
        attack_rate=float(payload["attack_rate"]),
        attack_duration=float(payload["attack_duration"]),
        pool_ports=int(payload["pool_ports"]),
        attack_packets=int(payload["attack_packets"]),
        home_onset=None if payload["home_onset"] is None else float(payload["home_onset"]),
        home_cause=payload["home_cause"],
        cgn_onset=None if payload["cgn_onset"] is None else float(payload["cgn_onset"]),
        home_refused=int(payload["home_refused"]),
        cgn_refused_udp=int(payload["cgn_refused_udp"]),
        cgn_refused_tcp=int(payload["cgn_refused_tcp"]),
        innocent_flows=[int(v) for v in payload["innocent_flows"]],
        innocent_refused=[int(v) for v in payload["innocent_refused"]],
        fairness=float(payload["fairness"]),
        victim_survival=float(payload["victim_survival"]),
    )


def encode_keepalive_result(result: AttackKeepaliveResult) -> Dict:
    return {
        "tag": result.tag,
        "subscribers": result.subscribers,
        "filtering": result.filtering,
        "natural_timeout": result.natural_timeout,
        "scans": result.scans,
        "spoofed_packets": result.spoofed_packets,
        "refreshed": result.refreshed,
        "refreshed_total": result.refreshed_total,
        "evicted": result.evicted,
        "evicted_total": result.evicted_total,
        "home_filtered": result.home_filtered,
        "onset": result.onset,
        "fairness": result.fairness,
        "victim_survival": result.victim_survival,
    }


def decode_keepalive_result(payload: Dict) -> AttackKeepaliveResult:
    return AttackKeepaliveResult(
        tag=payload["tag"],
        subscribers=int(payload["subscribers"]),
        filtering=payload["filtering"],
        natural_timeout=float(payload["natural_timeout"]),
        scans=int(payload["scans"]),
        spoofed_packets=int(payload["spoofed_packets"]),
        refreshed=int(payload["refreshed"]),
        refreshed_total=int(payload["refreshed_total"]),
        evicted=int(payload["evicted"]),
        evicted_total=int(payload["evicted_total"]),
        home_filtered=int(payload["home_filtered"]),
        onset=None if payload["onset"] is None else float(payload["onset"]),
        fairness=float(payload["fairness"]),
        victim_survival=float(payload["victim_survival"]),
    )


def encode_rst_result(result: AttackRstResult) -> Dict:
    return {
        "tag": result.tag,
        "subscribers": result.subscribers,
        "filtering": result.filtering,
        "victims": result.victims,
        "spoofed_rsts": result.spoofed_rsts,
        "cgn_torn": result.cgn_torn,
        "home_torn": result.home_torn,
        "home_filtered": result.home_filtered,
        "victims_reset": result.victims_reset,
        "onset": result.onset,
        "survived": result.survived,
        "fairness": result.fairness,
        "victim_survival": result.victim_survival,
    }


def decode_rst_result(payload: Dict) -> AttackRstResult:
    return AttackRstResult(
        tag=payload["tag"],
        subscribers=int(payload["subscribers"]),
        filtering=payload["filtering"],
        victims=int(payload["victims"]),
        spoofed_rsts=int(payload["spoofed_rsts"]),
        cgn_torn=int(payload["cgn_torn"]),
        home_torn=int(payload["home_torn"]),
        home_filtered=int(payload["home_filtered"]),
        victims_reset=int(payload["victims_reset"]),
        onset=None if payload["onset"] is None else float(payload["onset"]),
        survived=int(payload["survived"]),
        fairness=float(payload["fairness"]),
        victim_survival=float(payload["victim_survival"]),
    )


def _onset_text(onset: Optional[float]) -> str:
    return f"{onset:.1f}" if onset is not None else "never"


def _render_attack(results) -> Optional[str]:
    flood = results.family("attack_portflood")
    keepalive = results.family("attack_keepalive")
    rst = results.family("attack_rst")
    if not flood and not keepalive and not rst:
        return None
    parts = ["## Adversarial tier: NAT abuse (ReDAN attack families)"]
    if flood:
        parts.append(
            "Binding-exhaustion flood from one compromised subscriber; "
            "exhaustion onset per tier, and what the innocent subscribers "
            "could still do:"
        )
        lines = [
            "| device | home onset [s] | home cause | CGN onset [s] "
            "| CGN refused (udp/tcp) | innocent flows | fairness | survival |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for tag in sorted(flood):
            cell = flood[tag]
            lines.append(
                f"| {tag} | {_onset_text(cell.home_onset)} | {cell.home_cause or '-'} "
                f"| {_onset_text(cell.cgn_onset)} "
                f"| {cell.cgn_refused_udp}/{cell.cgn_refused_tcp} "
                f"| {sum(cell.innocent_flows)} | {cell.fairness:.3f} "
                f"| {cell.victim_survival:.2f} |"
            )
        parts.append("\n".join(lines))
    if keepalive:
        parts.append(
            "Spoofed keepalive sweeps over the CGN pool (blind source "
            "port): refreshed = victims alive past their natural timeout, "
            "evicted = victims dead before it:"
        )
        lines = [
            "| device | filtering | refreshed | evicted | filtered "
            "| onset [s] | fairness | survival |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for tag in sorted(keepalive):
            cell = keepalive[tag]
            lines.append(
                f"| {tag} | {cell.filtering} "
                f"| {cell.refreshed}/{cell.refreshed_total} "
                f"| {cell.evicted}/{cell.evicted_total} | {cell.home_filtered} "
                f"| {_onset_text(cell.onset)} | {cell.fairness:.3f} "
                f"| {cell.victim_survival:.2f} |"
            )
        parts.append("\n".join(lines))
    if rst:
        parts.append(
            "Off-path RST sweeps (blind port and sequence): the CGN tier "
            "tears bindings for everyone, the per-device columns show which "
            "CPEs would have filtered the spoof on their own:"
        )
        lines = [
            "| device | filtering | CGN torn | home torn | filtered "
            "| endpoints reset | onset [s] | fairness | survival |",
            "|---|---|---|---|---|---|---|---|---|",
        ]
        for tag in sorted(rst):
            cell = rst[tag]
            lines.append(
                f"| {tag} | {cell.filtering} | {cell.cgn_torn}/{cell.victims} "
                f"| {cell.home_torn}/{cell.victims} | {cell.home_filtered} "
                f"| {cell.victims_reset} | {_onset_text(cell.onset)} "
                f"| {cell.fairness:.3f} | {cell.victim_survival:.2f} |"
            )
        parts.append("\n".join(lines))
    return "\n\n".join(parts)


registry.register_family(registry.ExperimentFamily(
    name="attack_portflood",
    order=300,
    result_type=AttackPortfloodResult,
    description="NAT444 binding-exhaustion flood: per-tier onset + innocent collateral",
    probe_factory=lambda knobs: AttackPortfloodProbe(
        rate=_attack_knobs(knobs)["rate"],
        duration=_attack_knobs(knobs)["duration"],
    ).run_all,
    encode_cell=encode_portflood_result,
    decode_cell=decode_portflood_result,
    testbed_factory=nat444_factory,
    default_selected=False,
))

registry.register_family(registry.ExperimentFamily(
    name="attack_keepalive",
    order=310,
    result_type=AttackKeepaliveResult,
    description="Spoofed inbound keepalives refreshing/evicting victim bindings",
    probe_factory=lambda knobs: AttackKeepaliveProbe().run_all,
    encode_cell=encode_keepalive_result,
    decode_cell=decode_keepalive_result,
    testbed_factory=nat444_factory,
    default_selected=False,
))

registry.register_family(registry.ExperimentFamily(
    name="attack_rst",
    order=320,
    result_type=AttackRstResult,
    description="Off-path RST binding teardown through the NAT444 chain",
    probe_factory=lambda knobs: AttackRstProbe(
        rate=_attack_knobs(knobs)["rate"],
    ).run_all,
    encode_cell=encode_rst_result,
    decode_cell=decode_rst_result,
    testbed_factory=nat444_factory,
    default_selected=False,
))

registry.register_section(registry.ReportSection(
    key="attack",
    order=96,
    families=("attack_portflood", "attack_keepalive", "attack_rst"),
    render=_render_attack,
))
