"""The adversarial tier: a deterministic attacker and the ReDAN families.

``repro.attack`` turns the mechanisms the paper measures cooperatively —
binding timeouts, port allocation, filtering, RST handling — into the
attack surface ReDAN showed they are.  :class:`~repro.attack.node.AttackerNode`
crafts raw packets (no sockets, no retransmission, no RNG); the three
``attack_*`` experiment families in :mod:`repro.attack.families` drive it
against NAT444 segments and measure what happens to the *innocent*
subscribers sharing the gateway and the CGN.
"""

from repro.attack.node import AttackerNode

__all__ = ["AttackerNode"]
