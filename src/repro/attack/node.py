"""The deterministic attacker: raw packet injection from one host interface.

An :class:`AttackerNode` is *not* a protocol stack.  It never opens
sockets, never retransmits, never listens for replies, and draws nothing
from any RNG — every packet it emits (contents and send instant) is a pure
function of the caller's arguments, which is what keeps the attack
families inside the campaign's determinism contract (``jobs=N ≡ jobs=1``,
resume byte-identity, staged-engine parity).

Three primitives cover the ReDAN attack classes:

* :meth:`AttackerNode.send_udp` / :meth:`AttackerNode.send_syn` — the
  binding-exhaustion flood: distinct source ports open distinct bindings
  at every NAT tier on the path until a table or port pool refuses.
* :meth:`AttackerNode.send_udp` with a forged source — the spoofed
  keepalive: an off-path attacker claiming a victim's remote endpoint
  refreshes (or state-shifts) the victim's bindings from outside.
* :meth:`AttackerNode.send_rst` — the off-path RST teardown: NATs with
  ``rst_clears`` drop the binding on *any* RST, while endpoints apply the
  RFC 793 sequence window — the asymmetry the attack exploits.

The flood variant needs one piece of real-attacker tradecraft modeled:
a raw-socket attacker firewalls the RSTs its own kernel would send in
response to unexpected SYN|ACKs (otherwise those RSTs tear down the very
bindings the flood opened).  :meth:`AttackerNode.shield` installs that
firewall via the host stack's interceptor hook.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Callable, Optional

from repro.packets.ipv4 import PROTO_TCP, PROTO_UDP, IPv4Packet
from repro.packets.tcp import TCP_RST, TCP_SYN, TcpSegment
from repro.packets.udp import UdpDatagram
from repro.protocols.stack import Host

__all__ = ["AttackerNode"]

#: Payload of every attack datagram: 8 zero bytes, so a flood packet that
#: reaches a measurement responder parses as flow id 0 — an id the probes
#: never allocate — and is ignored instead of answered.
ATTACK_PAYLOAD = b"\x00" * 8


class AttackerNode:
    """Crafts and injects attack packets from one interface of ``host``.

    The node rides an existing :class:`~repro.protocols.stack.Host` — a
    compromised client in a subscriber home (the on-path flood position)
    or the far side of the WAN (the off-path spoofing position).  Sending
    goes through :meth:`Host.send_ip_routed`, so LAN injections follow the
    interface's DHCP-learned gateway exactly like legitimate traffic.
    """

    def __init__(self, host: Host, iface_index: int, label: str = "attacker"):
        self.host = host
        self.iface_index = iface_index
        self.label = label
        self.packets_sent = 0
        self.udp_sent = 0
        self.syn_sent = 0
        self.rst_sent = 0
        self._unshield: Optional[Callable[[], None]] = None

    # -- primitives --------------------------------------------------------

    def send_udp(
        self,
        src: IPv4Address,
        src_port: int,
        dst: IPv4Address,
        dst_port: int,
        payload: bytes = ATTACK_PAYLOAD,
    ) -> None:
        """Inject one UDP datagram (source fields entirely caller-chosen)."""
        self._send(IPv4Packet(src, dst, PROTO_UDP, UdpDatagram(src_port, dst_port, payload)))
        self.udp_sent += 1

    def send_syn(self, src: IPv4Address, src_port: int, dst: IPv4Address, dst_port: int, seq: int = 0) -> None:
        """Inject one bare SYN — opens a transitory TCP binding per NAT tier."""
        self._send(IPv4Packet(src, dst, PROTO_TCP, TcpSegment(src_port, dst_port, seq=seq, flags=TCP_SYN)))
        self.syn_sent += 1

    def send_rst(self, src: IPv4Address, src_port: int, dst: IPv4Address, dst_port: int, seq: int = 0) -> None:
        """Inject one forged RST (``seq`` is the attacker's blind guess)."""
        self._send(IPv4Packet(src, dst, PROTO_TCP, TcpSegment(src_port, dst_port, seq=seq, flags=TCP_RST)))
        self.rst_sent += 1

    def _send(self, packet: IPv4Packet) -> None:
        self.host.send_ip_routed(packet, self.iface_index)
        self.packets_sent += 1
        self._emit("attack.packet", proto="udp" if packet.protocol == PROTO_UDP else "tcp")

    def _emit(self, event: str, **fields) -> None:
        bus = self.host.sim.bus
        if bus is not None:
            bus.emit(event, attacker=self.label, **fields)

    # -- the raw-socket firewall ------------------------------------------

    def shield(self, port_lo: int, port_hi: int) -> None:
        """Silently swallow inbound responses to flood flows.

        A real flooding attacker sends from a raw socket and firewalls the
        SYN|ACKs/RSTs the network sends back — its own kernel would
        otherwise answer with RSTs that clear the flood's freshly opened
        bindings (``rst_clears`` is near-universal in the catalog).  The
        shield intercepts inbound packets on the attacker's interface whose
        destination port falls in ``[port_lo, port_hi)`` — the flood's
        source-port range — before the host stack can react to them.
        """
        if self._unshield is not None:
            return

        iface_index = self.iface_index

        def intercept(packet, iface) -> bool:
            if iface.index != iface_index:
                return False
            dst_port = getattr(packet.payload, "dst_port", None)
            return dst_port is not None and port_lo <= dst_port < port_hi

        self._unshield = self.host.install_intercept(intercept)
        self._emit("attack.shield", lo=port_lo, hi=port_hi)

    def unshield(self) -> None:
        """Remove the shield (the families detach it when their run ends)."""
        if self._unshield is not None:
            self._unshield()
            self._unshield = None
