"""RFC 4787 / 5382 / 5508 compliance grading over measured results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.icmp_tests import IcmpTestResult
from repro.core.tcp_binding import TcpTimeoutResult
from repro.core.udp_timeouts import UdpTimeoutResult

RFC4787_REQUIRED_S = 120.0
RFC4787_RECOMMENDED_S = 600.0
RFC5382_MINIMUM_S = 124 * 60.0

#: The ICMP kinds RFC 5508 REQ-3/REQ-4 most cares about for active flows.
RFC5508_KEY_KINDS = ("port_unreach", "host_unreach", "net_unreach", "ttl_exceeded", "frag_needed")


@dataclass
class ComplianceReport:
    """One device's standing against the three BCPs."""

    tag: str
    udp_timeout_s: Optional[float] = None
    udp_meets_required: Optional[bool] = None
    udp_meets_recommended: Optional[bool] = None
    tcp_timeout_s: Optional[float] = None  # None = exceeded the cutoff (compliant)
    tcp_meets_minimum: Optional[bool] = None
    icmp_missing_kinds: List[str] = field(default_factory=list)
    icmp_compliant: Optional[bool] = None

    def failures(self) -> List[str]:
        out = []
        if self.udp_meets_required is False:
            out.append(f"RFC4787: UDP timeout {self.udp_timeout_s:.0f}s < {RFC4787_REQUIRED_S:.0f}s required")
        if self.tcp_meets_minimum is False:
            out.append(f"RFC5382: TCP timeout {self.tcp_timeout_s:.0f}s < {RFC5382_MINIMUM_S:.0f}s required")
        if self.icmp_compliant is False:
            out.append(f"RFC5508: missing translation for {', '.join(self.icmp_missing_kinds)}")
        return out

    @property
    def fully_compliant(self) -> bool:
        return not self.failures()


def check_device(
    tag: str,
    udp1: Optional[UdpTimeoutResult] = None,
    tcp1: Optional[TcpTimeoutResult] = None,
    icmp: Optional[IcmpTestResult] = None,
) -> ComplianceReport:
    """Grade one device from whichever measurements are available.

    The UDP yardstick uses the UDP-1 (outbound-only) timeout — the paper's
    §4.1 reading of RFC 4787's REQ-5 ("Most devices retain UDP bindings for
    the 120 sec required ... UDP-1 presents a more unusual case").
    """
    report = ComplianceReport(tag)
    if udp1 is not None and udp1.samples:
        timeout = udp1.summary().median
        report.udp_timeout_s = timeout
        report.udp_meets_required = timeout >= RFC4787_REQUIRED_S
        report.udp_meets_recommended = timeout >= RFC4787_RECOMMENDED_S
    if tcp1 is not None:
        if tcp1.samples:
            timeout = tcp1.summary().median
            report.tcp_timeout_s = timeout
            report.tcp_meets_minimum = timeout >= RFC5382_MINIMUM_S
        elif tcp1.censored:
            report.tcp_timeout_s = None
            report.tcp_meets_minimum = True  # outlived the 24 h cutoff
    if icmp is not None:
        missing = []
        for kind in RFC5508_KEY_KINDS:
            for transport in ("udp", "tcp"):
                table = icmp.udp if transport == "udp" else icmp.tcp
                observation = table.get(kind)
                if observation is None or not observation.forwarded:
                    missing.append(f"{transport}:{kind}")
        report.icmp_missing_kinds = missing
        report.icmp_compliant = not missing
    return report


def population_summary(reports: Mapping[str, ComplianceReport]) -> Dict[str, float]:
    """The §4 population claims, as fractions of the graded population."""
    def fraction(attribute: str, expect: bool) -> float:
        graded = [r for r in reports.values() if getattr(r, attribute) is not None]
        if not graded:
            return float("nan")
        return sum(1 for r in graded if getattr(r, attribute) is expect) / len(graded)

    return {
        "udp_below_required": fraction("udp_meets_required", False),
        "udp_meets_recommended": fraction("udp_meets_recommended", True),
        "tcp_below_minimum": fraction("tcp_meets_minimum", False),
        "icmp_compliant": fraction("icmp_compliant", True),
    }
