"""IETF behavioural-requirements compliance (the yardsticks of §4).

The paper repeatedly grades devices against three BCPs:

* **RFC 4787** (NAT behavioural requirements for UDP): binding timeout MUST
  be ≥ 2 min and SHOULD be ≥ 5 min (the text uses the 600 s figure).
* **RFC 5382** (for TCP): established-binding timeout MUST be ≥ 124 min.
* **RFC 5508** (for ICMP): Destination Unreachable / Time Exceeded errors
  for an active binding SHOULD be translated and forwarded.

:func:`check_device` turns one device's *measured* results into a
:class:`ComplianceReport`; :func:`population_summary` reproduces the §4
population claims ("more than half of the tested devices do not conform…").
"""

from repro.compliance.checker import (
    ComplianceReport,
    RFC4787_REQUIRED_S,
    RFC4787_RECOMMENDED_S,
    RFC5382_MINIMUM_S,
    check_device,
    population_summary,
)

__all__ = [
    "ComplianceReport",
    "RFC4787_REQUIRED_S",
    "RFC4787_RECOMMENDED_S",
    "RFC5382_MINIMUM_S",
    "check_device",
    "population_summary",
]
