"""TCP segments (RFC 793), with the option kinds the study discusses.

The paper runs its TCP tests with SACK, timestamps and window scaling
*disabled* (§3.2.2), so the default segments here carry only an MSS option on
SYNs.  The option encoders exist because middlebox handling of TCP options
(e.g. sequence-number shifting that forgets SACK blocks, per Medina et al.)
is part of the related work this library lets users probe.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import List, Optional, Tuple

from repro.packets.checksum import checksum_of_parts, internet_checksum, pseudo_header
from repro.packets.ipv4 import PAYLOAD_PARSERS, PROTO_TCP

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10

BASE_HEADER_BYTES = 20

TCPOPT_END = 0
TCPOPT_NOP = 1
TCPOPT_MSS = 2
TCPOPT_WSCALE = 3
TCPOPT_SACK_PERMITTED = 4
TCPOPT_SACK = 5
TCPOPT_TIMESTAMP = 8

_FLAG_NAMES = [
    (TCP_SYN, "S"),
    (TCP_ACK, "A"),
    (TCP_FIN, "F"),
    (TCP_RST, "R"),
    (TCP_PSH, "P"),
]


class TcpOption:
    """One TCP option TLV."""

    __slots__ = ("kind", "data")

    def __init__(self, kind: int, data: bytes = b""):
        self.kind = kind
        self.data = data

    def wire_size(self) -> int:
        if self.kind in (TCPOPT_END, TCPOPT_NOP):
            return 1
        return 2 + len(self.data)

    def to_bytes(self) -> bytes:
        if self.kind in (TCPOPT_END, TCPOPT_NOP):
            return bytes([self.kind])
        return bytes([self.kind, 2 + len(self.data)]) + self.data

    @classmethod
    def mss(cls, value: int) -> "TcpOption":
        return cls(TCPOPT_MSS, value.to_bytes(2, "big"))

    @classmethod
    def sack_permitted(cls) -> "TcpOption":
        return cls(TCPOPT_SACK_PERMITTED)

    @classmethod
    def sack(cls, blocks: List[Tuple[int, int]]) -> "TcpOption":
        data = b"".join(left.to_bytes(4, "big") + right.to_bytes(4, "big") for left, right in blocks)
        return cls(TCPOPT_SACK, data)

    @classmethod
    def timestamp(cls, value: int, echo: int) -> "TcpOption":
        return cls(TCPOPT_TIMESTAMP, value.to_bytes(4, "big") + echo.to_bytes(4, "big"))

    @classmethod
    def window_scale(cls, shift: int) -> "TcpOption":
        return cls(TCPOPT_WSCALE, bytes([shift]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TcpOption kind={self.kind} len={len(self.data)}>"


class TcpSegment:
    """A TCP segment with explicit, possibly stale, checksum."""

    __slots__ = (
        "src_port",
        "dst_port",
        "seq",
        "ack",
        "flags",
        "window",
        "payload",
        "options",
        "checksum",
        "urgent",
        "_wire",
    )

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
        payload: bytes = b"",
        options: Optional[List[TcpOption]] = None,
        checksum: Optional[int] = None,
        urgent: int = 0,
    ):
        for port in (src_port, dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port out of range: {port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window
        self.payload = payload
        self.options = options or []
        self.checksum = checksum
        self.urgent = urgent
        self._wire: Optional[int] = None

    # -- flag helpers -------------------------------------------------------

    @property
    def syn(self) -> bool:
        return bool(self.flags & TCP_SYN)

    @property
    def ack_flag(self) -> bool:
        return bool(self.flags & TCP_ACK)

    @property
    def fin(self) -> bool:
        return bool(self.flags & TCP_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & TCP_RST)

    def flag_string(self) -> str:
        return "".join(name for bit, name in _FLAG_NAMES if self.flags & bit)

    # -- sizes ----------------------------------------------------------------

    def options_size(self) -> int:
        if not self.options:  # every data/ACK segment; only SYNs carry options
            return 0
        size = sum(opt.wire_size() for opt in self.options)
        if size % 4:
            size += 4 - size % 4
        return size

    def header_size(self) -> int:
        return BASE_HEADER_BYTES + self.options_size()

    def wire_size(self) -> int:
        # Cached: segments are structurally immutable once on the wire (the
        # one in-place mutation, the MSS-stripping quirk, resets the cache).
        size = self._wire
        if size is None:
            size = self._wire = self.header_size() + len(self.payload)
        return size

    def seq_space(self) -> int:
        """Sequence numbers this segment consumes (payload + SYN/FIN)."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    # -- checksums ---------------------------------------------------------------

    def _header(self, checksum: int) -> bytes:
        data_offset = self.header_size() // 4
        header = self.src_port.to_bytes(2, "big") + self.dst_port.to_bytes(2, "big")
        header += self.seq.to_bytes(4, "big") + self.ack.to_bytes(4, "big")
        header += bytes([(data_offset << 4), self.flags & 0x3F])
        header += self.window.to_bytes(2, "big")
        header += checksum.to_bytes(2, "big")
        header += self.urgent.to_bytes(2, "big")
        opts = b"".join(opt.to_bytes() for opt in self.options)
        if len(opts) % 4:
            opts += bytes([TCPOPT_END]) * (4 - len(opts) % 4)
        return header + opts

    def compute_checksum(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> int:
        if self.options:  # SYNs only; data/ACK segments take the int path
            pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, self.wire_size())
            return internet_checksum(pseudo + self._header(0) + self.payload)
        payload = self.payload
        src = src_ip._ip  # IPv4Address.__int__ is a Python call; ._ip is the raw int
        dst = dst_ip._ip
        words = (
            (src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF)
            + PROTO_TCP + BASE_HEADER_BYTES + len(payload)  # pseudo length word
            + self.src_port + self.dst_port
            + (self.seq >> 16) + (self.seq & 0xFFFF)
            + (self.ack >> 16) + (self.ack & 0xFFFF)
            + 0x5000 + (self.flags & 0x3F)  # data offset 5, reserved zero
            + self.window + self.urgent
        )
        return checksum_of_parts(words, payload)

    def fill_checksum(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> None:
        self.checksum = self.compute_checksum(src_ip, dst_ip)

    def checksum_ok(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> bool:
        if self.checksum is None:
            return False
        return self.checksum == self.compute_checksum(src_ip, dst_ip)

    # -- serialization ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        return self._header(self.checksum or 0) + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "TcpSegment":
        if len(data) < BASE_HEADER_BYTES:
            raise ValueError(f"truncated TCP segment: {len(data)} bytes")
        src_port = int.from_bytes(data[0:2], "big")
        dst_port = int.from_bytes(data[2:4], "big")
        seq = int.from_bytes(data[4:8], "big")
        ack = int.from_bytes(data[8:12], "big")
        data_offset = (data[12] >> 4) * 4
        flags = data[13] & 0x3F
        window = int.from_bytes(data[14:16], "big")
        checksum = int.from_bytes(data[16:18], "big")
        urgent = int.from_bytes(data[18:20], "big")
        options: List[TcpOption] = []
        offset = BASE_HEADER_BYTES
        while offset < data_offset:
            kind = data[offset]
            if kind == TCPOPT_END:
                break
            if kind == TCPOPT_NOP:
                options.append(TcpOption(TCPOPT_NOP))
                offset += 1
                continue
            length = data[offset + 1]
            options.append(TcpOption(kind, data[offset + 2 : offset + length]))
            offset += length
        return cls(
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            data[data_offset:],
            options,
            checksum,
            urgent,
        )

    def copy(self) -> "TcpSegment":
        return TcpSegment(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            self.flags,
            self.window,
            self.payload,
            list(self.options),
            self.checksum,
            self.urgent,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TCP {self.src_port}->{self.dst_port} [{self.flag_string()}] "
            f"seq={self.seq} ack={self.ack} len={len(self.payload)}>"
        )


PAYLOAD_PARSERS[PROTO_TCP] = TcpSegment.from_bytes
