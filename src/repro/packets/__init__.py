"""Structured packet model with real wire formats.

Every header the study touches is modelled here: Ethernet, IPv4 (including
the Record Route option some gateways mishandle), UDP, TCP, ICMP, SCTP and
DCCP, plus the DNS and DHCP application codecs.

Design rules:

* Every layer knows its :meth:`wire_size` so the simulator is byte-accurate
  without serializing on the hot path.
* Every layer serializes to *real* wire bytes (``to_bytes``/``from_bytes``)
  so tests can verify formats round-trip against the RFCs.
* Checksum fields are explicit and may be stale: a NAT that rewrites an
  address without fixing a checksum (a real bug the paper found in ``zy1``
  and ``ls1``) is representable, and receivers verify checksums the way real
  stacks do.
"""

from repro.packets.checksum import crc32c, internet_checksum
from repro.packets.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.packets.ipv4 import (
    PROTO_DCCP,
    PROTO_ICMP,
    PROTO_SCTP,
    PROTO_TCP,
    PROTO_UDP,
    IPv4Packet,
    RecordRouteOption,
)
from repro.packets.udp import UdpDatagram
from repro.packets.tcp import (
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TcpSegment,
)
from repro.packets.icmp import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMP_PARAM_PROBLEM,
    ICMP_SOURCE_QUENCH,
    ICMP_TIME_EXCEEDED,
    UNREACH_FRAG_NEEDED,
    UNREACH_HOST,
    UNREACH_NET,
    UNREACH_PORT,
    UNREACH_PROTO,
    UNREACH_SRC_ROUTE_FAILED,
    TIME_EXCEEDED_REASSEMBLY,
    TIME_EXCEEDED_TTL,
    IcmpMessage,
)
from repro.packets.sctp import (
    SCTP_ABORT,
    SCTP_COOKIE_ACK,
    SCTP_COOKIE_ECHO,
    SCTP_DATA,
    SCTP_INIT,
    SCTP_INIT_ACK,
    SCTP_SACK,
    SctpChunk,
    SctpPacket,
)
from repro.packets.dccp import (
    DCCP_ACK,
    DCCP_DATA,
    DCCP_REQUEST,
    DCCP_RESET,
    DCCP_RESPONSE,
    DccpPacket,
)

__all__ = [
    "crc32c",
    "internet_checksum",
    "EthernetFrame",
    "ETHERTYPE_IPV4",
    "IPv4Packet",
    "RecordRouteOption",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_SCTP",
    "PROTO_DCCP",
    "UdpDatagram",
    "TcpSegment",
    "TCP_SYN",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_RST",
    "TCP_PSH",
    "IcmpMessage",
    "ICMP_ECHO_REQUEST",
    "ICMP_ECHO_REPLY",
    "ICMP_DEST_UNREACH",
    "ICMP_SOURCE_QUENCH",
    "ICMP_TIME_EXCEEDED",
    "ICMP_PARAM_PROBLEM",
    "UNREACH_NET",
    "UNREACH_HOST",
    "UNREACH_PROTO",
    "UNREACH_PORT",
    "UNREACH_FRAG_NEEDED",
    "UNREACH_SRC_ROUTE_FAILED",
    "TIME_EXCEEDED_TTL",
    "TIME_EXCEEDED_REASSEMBLY",
    "SctpPacket",
    "SctpChunk",
    "SCTP_DATA",
    "SCTP_INIT",
    "SCTP_INIT_ACK",
    "SCTP_SACK",
    "SCTP_COOKIE_ECHO",
    "SCTP_COOKIE_ACK",
    "SCTP_ABORT",
    "DccpPacket",
    "DCCP_REQUEST",
    "DCCP_RESPONSE",
    "DCCP_DATA",
    "DCCP_ACK",
    "DCCP_RESET",
]
