"""DNS wire format (RFC 1035), enough for the study's DNS-proxy tests.

Encodes/decodes the header, question section and A/PTR/TXT resource records,
plus the 2-byte length prefix used by DNS-over-TCP.  Name compression is not
emitted (it is accepted on decode for pointers back into the message), which
matches what simple embedded DNS proxies produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ipaddress import IPv4Address
from typing import List, Tuple

QTYPE_A = 1
QTYPE_NS = 2
QTYPE_PTR = 12
QTYPE_TXT = 16
QTYPE_AAAA = 28

QCLASS_IN = 1

RCODE_NOERROR = 0
RCODE_FORMERR = 1
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3
RCODE_NOTIMP = 4
RCODE_REFUSED = 5

_MAX_LABEL = 63
_MAX_NAME = 255


def encode_name(name: str) -> bytes:
    """Encode ``www.example.com`` as length-prefixed labels."""
    if name in ("", "."):
        return b"\x00"
    out = bytearray()
    for label in name.rstrip(".").split("."):
        raw = label.encode("ascii")
        if not raw:
            raise ValueError(f"empty label in {name!r}")
        if len(raw) > _MAX_LABEL:
            raise ValueError(f"label too long in {name!r}")
        out.append(len(raw))
        out += raw
    out.append(0)
    if len(out) > _MAX_NAME:
        raise ValueError(f"name too long: {name!r}")
    return bytes(out)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next_offset)."""
    labels: List[str] = []
    jumps = 0
    next_offset = None
    while True:
        if offset >= len(data):
            raise ValueError("truncated DNS name")
        length = data[offset]
        if length == 0:
            offset += 1
            break
        if length & 0xC0 == 0xC0:  # compression pointer
            if offset + 1 >= len(data):
                raise ValueError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if next_offset is None:
                next_offset = offset + 2
            offset = pointer
            jumps += 1
            if jumps > 64:
                raise ValueError("compression pointer loop")
            continue
        if length > _MAX_LABEL:
            raise ValueError(f"bad label length {length}")
        label = data[offset + 1 : offset + 1 + length]
        if len(label) != length:
            raise ValueError("truncated label")
        labels.append(label.decode("ascii"))
        offset += 1 + length
    name = ".".join(labels)
    return name, (next_offset if next_offset is not None else offset)


@dataclass(frozen=True)
class DnsQuestion:
    name: str
    qtype: int = QTYPE_A
    qclass: int = QCLASS_IN

    def to_bytes(self) -> bytes:
        return encode_name(self.name) + self.qtype.to_bytes(2, "big") + self.qclass.to_bytes(2, "big")


@dataclass(frozen=True)
class DnsRecord:
    name: str
    rtype: int
    ttl: int
    rdata: bytes
    rclass: int = QCLASS_IN

    @classmethod
    def a(cls, name: str, address: IPv4Address, ttl: int = 300) -> "DnsRecord":
        return cls(name, QTYPE_A, ttl, address.packed)

    @property
    def address(self) -> IPv4Address:
        if self.rtype != QTYPE_A or len(self.rdata) != 4:
            raise ValueError("not an A record")
        return IPv4Address(self.rdata)

    def to_bytes(self) -> bytes:
        out = encode_name(self.name)
        out += self.rtype.to_bytes(2, "big") + self.rclass.to_bytes(2, "big")
        out += self.ttl.to_bytes(4, "big")
        out += len(self.rdata).to_bytes(2, "big") + self.rdata
        return out


@dataclass
class DnsMessage:
    """A DNS query or response."""

    txid: int = 0
    is_response: bool = False
    opcode: int = 0
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    rcode: int = RCODE_NOERROR
    questions: List[DnsQuestion] = field(default_factory=list)
    answers: List[DnsRecord] = field(default_factory=list)
    authority: List[DnsRecord] = field(default_factory=list)
    additional: List[DnsRecord] = field(default_factory=list)

    @classmethod
    def query(cls, name: str, qtype: int = QTYPE_A, txid: int = 0) -> "DnsMessage":
        return cls(txid=txid, questions=[DnsQuestion(name, qtype)])

    def response(self, answers: List[DnsRecord], rcode: int = RCODE_NOERROR) -> "DnsMessage":
        """Build the response to this query."""
        return DnsMessage(
            txid=self.txid,
            is_response=True,
            recursion_desired=self.recursion_desired,
            recursion_available=True,
            rcode=rcode,
            questions=list(self.questions),
            answers=answers,
        )

    def to_bytes(self) -> bytes:
        flags = 0
        if self.is_response:
            flags |= 0x8000
        flags |= (self.opcode & 0xF) << 11
        if self.authoritative:
            flags |= 0x0400
        if self.truncated:
            flags |= 0x0200
        if self.recursion_desired:
            flags |= 0x0100
        if self.recursion_available:
            flags |= 0x0080
        flags |= self.rcode & 0xF
        out = self.txid.to_bytes(2, "big") + flags.to_bytes(2, "big")
        out += len(self.questions).to_bytes(2, "big")
        out += len(self.answers).to_bytes(2, "big")
        out += len(self.authority).to_bytes(2, "big")
        out += len(self.additional).to_bytes(2, "big")
        for question in self.questions:
            out += question.to_bytes()
        for section in (self.answers, self.authority, self.additional):
            for record in section:
                out += record.to_bytes()
        return out

    @classmethod
    def from_bytes(cls, data: bytes) -> "DnsMessage":
        if len(data) < 12:
            raise ValueError(f"truncated DNS header: {len(data)} bytes")
        txid = int.from_bytes(data[0:2], "big")
        flags = int.from_bytes(data[2:4], "big")
        counts = [int.from_bytes(data[4 + 2 * i : 6 + 2 * i], "big") for i in range(4)]
        message = cls(
            txid=txid,
            is_response=bool(flags & 0x8000),
            opcode=(flags >> 11) & 0xF,
            authoritative=bool(flags & 0x0400),
            truncated=bool(flags & 0x0200),
            recursion_desired=bool(flags & 0x0100),
            recursion_available=bool(flags & 0x0080),
            rcode=flags & 0xF,
        )
        offset = 12
        for _ in range(counts[0]):
            name, offset = decode_name(data, offset)
            qtype = int.from_bytes(data[offset : offset + 2], "big")
            qclass = int.from_bytes(data[offset + 2 : offset + 4], "big")
            offset += 4
            message.questions.append(DnsQuestion(name, qtype, qclass))
        for section, count in zip(
            (message.answers, message.authority, message.additional), counts[1:]
        ):
            for _ in range(count):
                name, offset = decode_name(data, offset)
                rtype = int.from_bytes(data[offset : offset + 2], "big")
                rclass = int.from_bytes(data[offset + 2 : offset + 4], "big")
                ttl = int.from_bytes(data[offset + 4 : offset + 8], "big")
                rdlength = int.from_bytes(data[offset + 8 : offset + 10], "big")
                rdata = data[offset + 10 : offset + 10 + rdlength]
                if len(rdata) != rdlength:
                    raise ValueError("truncated RDATA")
                offset += 10 + rdlength
                section.append(DnsRecord(name, rtype, ttl, rdata, rclass))
        return message


def frame_tcp(message: DnsMessage) -> bytes:
    """Wrap a message with the 2-byte length prefix of DNS-over-TCP."""
    raw = message.to_bytes()
    if len(raw) > 0xFFFF:
        raise ValueError("DNS message too large for TCP framing")
    return len(raw).to_bytes(2, "big") + raw


def unframe_tcp(buffer: bytes) -> Tuple[List[DnsMessage], bytes]:
    """Extract complete messages from a TCP byte stream.

    Returns the decoded messages and the unconsumed remainder.
    """
    messages: List[DnsMessage] = []
    while len(buffer) >= 2:
        length = int.from_bytes(buffer[0:2], "big")
        if len(buffer) < 2 + length:
            break
        messages.append(DnsMessage.from_bytes(buffer[2 : 2 + length]))
        buffer = buffer[2 + length :]
    return messages, buffer
