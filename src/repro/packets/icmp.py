"""ICMP messages (RFC 792), everything the ICMP translation tests forge.

An ICMP *error* embeds the IP header + first 8 bytes of the transport header
of the datagram that provoked it.  Correctly NATing such an error means
rewriting the *embedded* addresses, ports and checksums back to the private
view — precisely the behaviour Table 2 of the paper grades devices on.  The
embedded packet is kept structured here (``embedded`` is an
:class:`~repro.packets.ipv4.IPv4Packet`) so a gateway's partial rewrite and
stale embedded checksums remain observable; serialization truncates the
embedded transport to its first 8 bytes, as on the wire.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Optional

from repro.packets.checksum import internet_checksum
from repro.packets.ipv4 import PAYLOAD_PARSERS, PROTO_ICMP, IPv4Packet

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACH = 3
ICMP_SOURCE_QUENCH = 4
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11
ICMP_PARAM_PROBLEM = 12

UNREACH_NET = 0
UNREACH_HOST = 1
UNREACH_PROTO = 2
UNREACH_PORT = 3
UNREACH_FRAG_NEEDED = 4
UNREACH_SRC_ROUTE_FAILED = 5

TIME_EXCEEDED_TTL = 0
TIME_EXCEEDED_REASSEMBLY = 1

HEADER_BYTES = 8

_TYPE_NAMES = {
    ICMP_ECHO_REPLY: "echo-reply",
    ICMP_DEST_UNREACH: "dest-unreach",
    ICMP_SOURCE_QUENCH: "source-quench",
    ICMP_ECHO_REQUEST: "echo-request",
    ICMP_TIME_EXCEEDED: "time-exceeded",
    ICMP_PARAM_PROBLEM: "param-problem",
}

#: ICMP types that carry an embedded offending datagram.
ERROR_TYPES = frozenset(
    {ICMP_DEST_UNREACH, ICMP_SOURCE_QUENCH, ICMP_TIME_EXCEEDED, ICMP_PARAM_PROBLEM}
)


class IcmpMessage:
    """An ICMP message; errors embed the offending IPv4 packet."""

    __slots__ = ("icmp_type", "code", "rest", "embedded", "data", "checksum")

    def __init__(
        self,
        icmp_type: int,
        code: int = 0,
        rest: int = 0,
        embedded: Optional[IPv4Packet] = None,
        data: bytes = b"",
        checksum: Optional[int] = None,
    ):
        self.icmp_type = icmp_type
        self.code = code
        # "rest of header": echo id<<16|seq, or next-hop MTU for frag-needed.
        self.rest = rest
        self.embedded = embedded
        self.data = data
        self.checksum = checksum

    # -- constructors for the messages the tests forge ----------------------

    @classmethod
    def echo_request(cls, ident: int, seq: int, data: bytes = b"") -> "IcmpMessage":
        return cls(ICMP_ECHO_REQUEST, 0, ((ident & 0xFFFF) << 16) | (seq & 0xFFFF), data=data)

    @classmethod
    def echo_reply(cls, ident: int, seq: int, data: bytes = b"") -> "IcmpMessage":
        return cls(ICMP_ECHO_REPLY, 0, ((ident & 0xFFFF) << 16) | (seq & 0xFFFF), data=data)

    @classmethod
    def error(
        cls, icmp_type: int, code: int, offending: IPv4Packet, mtu: int = 0
    ) -> "IcmpMessage":
        if icmp_type not in ERROR_TYPES:
            raise ValueError(f"ICMP type {icmp_type} is not an error type")
        rest = mtu & 0xFFFF if icmp_type == ICMP_DEST_UNREACH and code == UNREACH_FRAG_NEEDED else 0
        return cls(icmp_type, code, rest, embedded=offending)

    @property
    def is_error(self) -> bool:
        return self.icmp_type in ERROR_TYPES

    @property
    def echo_ident(self) -> int:
        return (self.rest >> 16) & 0xFFFF

    @property
    def echo_seq(self) -> int:
        return self.rest & 0xFFFF

    @property
    def mtu(self) -> int:
        return self.rest & 0xFFFF

    # -- sizes ---------------------------------------------------------------

    def _embedded_bytes(self) -> bytes:
        """Embedded datagram as it appears on the wire: IP header + 8 bytes."""
        if self.embedded is None:
            return b""
        raw = self.embedded.to_bytes()
        return raw[: self.embedded.header_size() + 8]

    def wire_size(self) -> int:
        if self.embedded is not None:
            return HEADER_BYTES + self.embedded.header_size() + 8
        return HEADER_BYTES + len(self.data)

    # -- checksums --------------------------------------------------------------

    def _body(self) -> bytes:
        return self._embedded_bytes() if self.embedded is not None else self.data

    def _header(self, checksum: int) -> bytes:
        return bytes([self.icmp_type, self.code]) + checksum.to_bytes(2, "big") + self.rest.to_bytes(4, "big")

    def compute_checksum(self) -> int:
        return internet_checksum(self._header(0) + self._body())

    def fill_checksum(self, _src_ip: IPv4Address = None, _dst_ip: IPv4Address = None) -> None:
        """ICMP checksums ignore the pseudo-header; signature matches peers."""
        self.checksum = self.compute_checksum()

    def checksum_ok(self) -> bool:
        if self.checksum is None:
            return False
        return self.checksum == self.compute_checksum()

    # -- serialization -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        checksum = self.checksum if self.checksum is not None else self.compute_checksum()
        return self._header(checksum) + self._body()

    @classmethod
    def from_bytes(cls, data: bytes) -> "IcmpMessage":
        if len(data) < HEADER_BYTES:
            raise ValueError(f"truncated ICMP message: {len(data)} bytes")
        icmp_type = data[0]
        code = data[1]
        checksum = int.from_bytes(data[2:4], "big")
        rest = int.from_bytes(data[4:8], "big")
        body = data[HEADER_BYTES:]
        embedded = None
        payload = b""
        if icmp_type in ERROR_TYPES and len(body) >= 20:
            try:
                embedded = IPv4Packet.from_bytes(body)
            except ValueError:
                # The embedded transport is truncated to 8 bytes on the wire,
                # which is less than a full TCP header; keep the raw bytes.
                payload = body
        else:
            payload = body
        return cls(icmp_type, code, rest, embedded, payload, checksum)

    def copy(self) -> "IcmpMessage":
        return IcmpMessage(self.icmp_type, self.code, self.rest, self.embedded, self.data, self.checksum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = _TYPE_NAMES.get(self.icmp_type, str(self.icmp_type))
        return f"<ICMP {name}/{self.code} embedded={self.embedded!r}>"


PAYLOAD_PARSERS[PROTO_ICMP] = IcmpMessage.from_bytes
