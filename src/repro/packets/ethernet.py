"""Ethernet II frames."""

from __future__ import annotations

from typing import Any, Optional

from repro.netsim.addresses import MacAddress

ETHERTYPE_IPV4 = 0x0800

HEADER_BYTES = 14  # dst(6) + src(6) + ethertype(2)
#: Frame check sequence; counted in wire size so link timing matches reality.
FCS_BYTES = 4
MIN_PAYLOAD_BYTES = 46


class EthernetFrame:
    """An Ethernet II frame carrying a structured payload (usually IPv4)."""

    __slots__ = ("dst", "src", "ethertype", "payload", "_wire")

    def __init__(self, dst: MacAddress, src: MacAddress, payload: Any, ethertype: int = ETHERTYPE_IPV4):
        self.dst = dst
        self.src = src
        self.ethertype = ethertype
        self.payload = payload
        self._wire: Optional[int] = None

    def wire_size(self) -> int:
        # Cached: a frame crosses several links (host, switch relay, gateway)
        # and its payload never changes after construction.
        size = self._wire
        if size is None:
            payload = self.payload
            payload_size = payload.wire_size() if hasattr(payload, "wire_size") else len(payload)
            size = self._wire = HEADER_BYTES + max(payload_size, MIN_PAYLOAD_BYTES) + FCS_BYTES
        return size

    def to_bytes(self) -> bytes:
        payload = self.payload.to_bytes() if hasattr(self.payload, "to_bytes") else bytes(self.payload)
        if len(payload) < MIN_PAYLOAD_BYTES:
            payload += b"\x00" * (MIN_PAYLOAD_BYTES - len(payload))
        return (
            self.dst.to_bytes()
            + self.src.to_bytes()
            + self.ethertype.to_bytes(2, "big")
            + payload
        )

    @classmethod
    def from_bytes(cls, data: bytes, payload_parser: Optional[Any] = None) -> "EthernetFrame":
        """Parse a frame; ``payload_parser`` (e.g. ``IPv4Packet.from_bytes``)
        decodes the payload, otherwise it stays raw bytes."""
        if len(data) < HEADER_BYTES:
            raise ValueError(f"truncated Ethernet frame: {len(data)} bytes")
        dst = MacAddress.from_bytes(data[0:6])
        src = MacAddress.from_bytes(data[6:12])
        ethertype = int.from_bytes(data[12:14], "big")
        raw_payload = data[HEADER_BYTES:]
        payload = payload_parser(raw_payload) if payload_parser else raw_payload
        return cls(dst, src, payload, ethertype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Eth {self.src}->{self.dst} type={self.ethertype:#06x} {self.payload!r}>"
