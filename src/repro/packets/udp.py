"""UDP datagrams (RFC 768)."""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Optional

from repro.packets.checksum import checksum_of_parts
from repro.packets.ipv4 import PAYLOAD_PARSERS, PROTO_UDP

HEADER_BYTES = 8


class UdpDatagram:
    """A UDP datagram.  The checksum covers the IPv4 pseudo-header."""

    __slots__ = ("src_port", "dst_port", "payload", "checksum")

    def __init__(self, src_port: int, dst_port: int, payload: bytes = b"", checksum: Optional[int] = None):
        for port in (src_port, dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port out of range: {port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload
        self.checksum = checksum

    def wire_size(self) -> int:
        return HEADER_BYTES + len(self.payload)

    def _header(self, checksum: int) -> bytes:
        return (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.wire_size().to_bytes(2, "big")
            + checksum.to_bytes(2, "big")
        )

    def compute_checksum(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> int:
        payload = self.payload
        length = HEADER_BYTES + len(payload)
        src = src_ip._ip  # ._ip avoids the IPv4Address.__int__ call
        dst = dst_ip._ip
        words = (
            (src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF)
            + PROTO_UDP + length  # pseudo-header; length appears again below
            + self.src_port + self.dst_port + length
        )
        checksum = checksum_of_parts(words, payload)
        # RFC 768: an all-zero computed checksum is transmitted as 0xFFFF.
        return checksum or 0xFFFF

    def fill_checksum(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> None:
        self.checksum = self.compute_checksum(src_ip, dst_ip)

    def checksum_ok(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> bool:
        if self.checksum is None:
            return False
        return self.checksum == self.compute_checksum(src_ip, dst_ip)

    def to_bytes(self) -> bytes:
        return self._header(self.checksum or 0) + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "UdpDatagram":
        if len(data) < HEADER_BYTES:
            raise ValueError(f"truncated UDP datagram: {len(data)} bytes")
        src_port = int.from_bytes(data[0:2], "big")
        dst_port = int.from_bytes(data[2:4], "big")
        length = int.from_bytes(data[4:6], "big")
        checksum = int.from_bytes(data[6:8], "big")
        return cls(src_port, dst_port, data[HEADER_BYTES:length], checksum)

    def copy(self) -> "UdpDatagram":
        return UdpDatagram(self.src_port, self.dst_port, self.payload, self.checksum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UDP {self.src_port}->{self.dst_port} len={len(self.payload)}>"


PAYLOAD_PARSERS[PROTO_UDP] = UdpDatagram.from_bytes
