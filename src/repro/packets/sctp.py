"""SCTP packets (RFC 4960), minimal but wire-accurate.

Only what the SCTP connectivity test needs: the common header, CRC-32c
checksum, and the INIT / INIT-ACK / COOKIE-ECHO / COOKIE-ACK / DATA / SACK /
ABORT chunks of a single-stream association.

The crucial property for the study (§4.4): the SCTP checksum covers only the
SCTP packet — *not* an IP pseudo-header — so an association survives a
gateway that rewrites the IP source address and nothing else.  That is
exactly why 18 of 34 devices pass SCTP while none pass DCCP.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import List, Optional

from repro.packets.checksum import crc32c
from repro.packets.ipv4 import PAYLOAD_PARSERS, PROTO_SCTP

SCTP_DATA = 0
SCTP_INIT = 1
SCTP_INIT_ACK = 2
SCTP_SACK = 3
SCTP_ABORT = 6
SCTP_COOKIE_ECHO = 10
SCTP_COOKIE_ACK = 11

COMMON_HEADER_BYTES = 12
CHUNK_HEADER_BYTES = 4

_CHUNK_NAMES = {
    SCTP_DATA: "DATA",
    SCTP_INIT: "INIT",
    SCTP_INIT_ACK: "INIT-ACK",
    SCTP_SACK: "SACK",
    SCTP_ABORT: "ABORT",
    SCTP_COOKIE_ECHO: "COOKIE-ECHO",
    SCTP_COOKIE_ACK: "COOKIE-ACK",
}


class SctpChunk:
    """One SCTP chunk (type, flags, value)."""

    __slots__ = ("chunk_type", "flags", "value")

    def __init__(self, chunk_type: int, value: bytes = b"", flags: int = 0):
        self.chunk_type = chunk_type
        self.flags = flags
        self.value = value

    def wire_size(self) -> int:
        size = CHUNK_HEADER_BYTES + len(self.value)
        if size % 4:
            size += 4 - size % 4  # chunks are padded to 32-bit boundaries
        return size

    def to_bytes(self) -> bytes:
        length = CHUNK_HEADER_BYTES + len(self.value)
        raw = bytes([self.chunk_type, self.flags]) + length.to_bytes(2, "big") + self.value
        if len(raw) % 4:
            raw += b"\x00" * (4 - len(raw) % 4)
        return raw

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = _CHUNK_NAMES.get(self.chunk_type, str(self.chunk_type))
        return f"<SctpChunk {name} len={len(self.value)}>"


class SctpPacket:
    """An SCTP packet: common header + chunks, checksummed with CRC-32c."""

    __slots__ = ("src_port", "dst_port", "verification_tag", "chunks", "checksum")

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        verification_tag: int,
        chunks: List[SctpChunk],
        checksum: Optional[int] = None,
    ):
        for port in (src_port, dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port out of range: {port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.verification_tag = verification_tag & 0xFFFFFFFF
        self.chunks = chunks
        self.checksum = checksum

    def wire_size(self) -> int:
        return COMMON_HEADER_BYTES + sum(chunk.wire_size() for chunk in self.chunks)

    def _serialize(self, checksum: int) -> bytes:
        header = self.src_port.to_bytes(2, "big") + self.dst_port.to_bytes(2, "big")
        header += self.verification_tag.to_bytes(4, "big")
        header += checksum.to_bytes(4, "big")
        return header + b"".join(chunk.to_bytes() for chunk in self.chunks)

    def compute_checksum(self, _src_ip: IPv4Address = None, _dst_ip: IPv4Address = None) -> int:
        """CRC-32c over the packet with a zeroed checksum field.

        The IP addresses are accepted (and ignored) so callers can treat all
        transports uniformly; SCTP deliberately has no pseudo-header.
        """
        return crc32c(self._serialize(0))

    def fill_checksum(self, src_ip: IPv4Address = None, dst_ip: IPv4Address = None) -> None:
        self.checksum = self.compute_checksum(src_ip, dst_ip)

    def checksum_ok(self) -> bool:
        if self.checksum is None:
            return False
        return self.checksum == self.compute_checksum()

    def to_bytes(self) -> bytes:
        return self._serialize(self.checksum or 0)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SctpPacket":
        if len(data) < COMMON_HEADER_BYTES:
            raise ValueError(f"truncated SCTP packet: {len(data)} bytes")
        src_port = int.from_bytes(data[0:2], "big")
        dst_port = int.from_bytes(data[2:4], "big")
        tag = int.from_bytes(data[4:8], "big")
        checksum = int.from_bytes(data[8:12], "big")
        chunks: List[SctpChunk] = []
        offset = COMMON_HEADER_BYTES
        while offset + CHUNK_HEADER_BYTES <= len(data):
            chunk_type = data[offset]
            flags = data[offset + 1]
            length = int.from_bytes(data[offset + 2 : offset + 4], "big")
            if length < CHUNK_HEADER_BYTES:
                raise ValueError(f"bad SCTP chunk length: {length}")
            value = data[offset + CHUNK_HEADER_BYTES : offset + length]
            chunks.append(SctpChunk(chunk_type, value, flags))
            padded = length + (4 - length % 4) % 4
            offset += padded
        return cls(src_port, dst_port, tag, chunks, checksum)

    def copy(self) -> "SctpPacket":
        return SctpPacket(self.src_port, self.dst_port, self.verification_tag, list(self.chunks), self.checksum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SCTP {self.src_port}->{self.dst_port} tag={self.verification_tag:#x} {self.chunks!r}>"


PAYLOAD_PARSERS[PROTO_SCTP] = SctpPacket.from_bytes
