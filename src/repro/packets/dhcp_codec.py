"""DHCP wire format (RFC 2131/2132), as used by the testbed.

The test server leases a distinct RFC 1918 block to every gateway's WAN
interface, and each gateway's own DHCP server configures the test client's
per-VLAN interface — so both a server and a client speak this format.
Supported options are the ones those exchanges need: message type, subnet
mask, router, DNS servers, lease time, server identifier, requested address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ipaddress import IPv4Address
from typing import Dict, List, Optional

from repro.netsim.addresses import MacAddress

DHCP_DISCOVER = 1
DHCP_OFFER = 2
DHCP_REQUEST = 3
DHCP_DECLINE = 4
DHCP_ACK = 5
DHCP_NAK = 6
DHCP_RELEASE = 7

OPT_SUBNET_MASK = 1
OPT_ROUTER = 3
OPT_DNS_SERVERS = 6
OPT_REQUESTED_IP = 50
OPT_LEASE_TIME = 51
OPT_MESSAGE_TYPE = 53
OPT_SERVER_ID = 54
OPT_END = 255

BOOTREQUEST = 1
BOOTREPLY = 2

MAGIC_COOKIE = bytes([99, 130, 83, 99])

_FIXED_BYTES = 236

MESSAGE_TYPE_NAMES = {
    DHCP_DISCOVER: "DISCOVER",
    DHCP_OFFER: "OFFER",
    DHCP_REQUEST: "REQUEST",
    DHCP_DECLINE: "DECLINE",
    DHCP_ACK: "ACK",
    DHCP_NAK: "NAK",
    DHCP_RELEASE: "RELEASE",
}

_ZERO_IP = IPv4Address("0.0.0.0")


def _ip_list_bytes(addresses: List[IPv4Address]) -> bytes:
    return b"".join(a.packed for a in addresses)


@dataclass
class DhcpMessage:
    """A BOOTP/DHCP message."""

    op: int
    xid: int
    client_mac: MacAddress
    ciaddr: IPv4Address = _ZERO_IP
    yiaddr: IPv4Address = _ZERO_IP
    siaddr: IPv4Address = _ZERO_IP
    giaddr: IPv4Address = _ZERO_IP
    options: Dict[int, bytes] = field(default_factory=dict)

    # -- option accessors ---------------------------------------------------

    @property
    def message_type(self) -> Optional[int]:
        raw = self.options.get(OPT_MESSAGE_TYPE)
        return raw[0] if raw else None

    def set_message_type(self, message_type: int) -> None:
        self.options[OPT_MESSAGE_TYPE] = bytes([message_type])

    @property
    def subnet_mask(self) -> Optional[IPv4Address]:
        raw = self.options.get(OPT_SUBNET_MASK)
        return IPv4Address(raw) if raw else None

    @property
    def router(self) -> Optional[IPv4Address]:
        raw = self.options.get(OPT_ROUTER)
        return IPv4Address(raw[:4]) if raw else None

    @property
    def dns_servers(self) -> List[IPv4Address]:
        raw = self.options.get(OPT_DNS_SERVERS, b"")
        return [IPv4Address(raw[i : i + 4]) for i in range(0, len(raw), 4)]

    @property
    def lease_time(self) -> Optional[int]:
        raw = self.options.get(OPT_LEASE_TIME)
        return int.from_bytes(raw, "big") if raw else None

    @property
    def server_id(self) -> Optional[IPv4Address]:
        raw = self.options.get(OPT_SERVER_ID)
        return IPv4Address(raw) if raw else None

    @property
    def requested_ip(self) -> Optional[IPv4Address]:
        raw = self.options.get(OPT_REQUESTED_IP)
        return IPv4Address(raw) if raw else None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def discover(cls, xid: int, client_mac: MacAddress) -> "DhcpMessage":
        message = cls(BOOTREQUEST, xid, client_mac)
        message.set_message_type(DHCP_DISCOVER)
        return message

    @classmethod
    def request(cls, xid: int, client_mac: MacAddress, requested: IPv4Address, server_id: IPv4Address) -> "DhcpMessage":
        message = cls(BOOTREQUEST, xid, client_mac)
        message.set_message_type(DHCP_REQUEST)
        message.options[OPT_REQUESTED_IP] = requested.packed
        message.options[OPT_SERVER_ID] = server_id.packed
        return message

    @classmethod
    def reply(
        cls,
        message_type: int,
        xid: int,
        client_mac: MacAddress,
        yiaddr: IPv4Address,
        server_id: IPv4Address,
        subnet_mask: IPv4Address,
        router: Optional[IPv4Address],
        dns_servers: List[IPv4Address],
        lease_time: int,
    ) -> "DhcpMessage":
        message = cls(BOOTREPLY, xid, client_mac, yiaddr=yiaddr, siaddr=server_id)
        message.set_message_type(message_type)
        message.options[OPT_SERVER_ID] = server_id.packed
        message.options[OPT_SUBNET_MASK] = subnet_mask.packed
        if router is not None:
            message.options[OPT_ROUTER] = router.packed
        if dns_servers:
            message.options[OPT_DNS_SERVERS] = _ip_list_bytes(dns_servers)
        message.options[OPT_LEASE_TIME] = lease_time.to_bytes(4, "big")
        return message

    # -- serialization ------------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray(_FIXED_BYTES)
        out[0] = self.op
        out[1] = 1  # htype: Ethernet
        out[2] = 6  # hlen
        out[4:8] = self.xid.to_bytes(4, "big")
        out[12:16] = self.ciaddr.packed
        out[16:20] = self.yiaddr.packed
        out[20:24] = self.siaddr.packed
        out[24:28] = self.giaddr.packed
        out[28:34] = self.client_mac.to_bytes()
        raw = bytes(out) + MAGIC_COOKIE
        for code in sorted(self.options):
            value = self.options[code]
            raw += bytes([code, len(value)]) + value
        raw += bytes([OPT_END])
        return raw

    @classmethod
    def from_bytes(cls, data: bytes) -> "DhcpMessage":
        if len(data) < _FIXED_BYTES + 4:
            raise ValueError(f"truncated DHCP message: {len(data)} bytes")
        if data[_FIXED_BYTES : _FIXED_BYTES + 4] != MAGIC_COOKIE:
            raise ValueError("missing DHCP magic cookie")
        message = cls(
            op=data[0],
            xid=int.from_bytes(data[4:8], "big"),
            client_mac=MacAddress.from_bytes(data[28:34]),
            ciaddr=IPv4Address(data[12:16]),
            yiaddr=IPv4Address(data[16:20]),
            siaddr=IPv4Address(data[20:24]),
            giaddr=IPv4Address(data[24:28]),
        )
        offset = _FIXED_BYTES + 4
        while offset < len(data):
            code = data[offset]
            if code == OPT_END:
                break
            if code == 0:  # pad
                offset += 1
                continue
            length = data[offset + 1]
            message.options[code] = data[offset + 2 : offset + 2 + length]
            offset += 2 + length
        return message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = MESSAGE_TYPE_NAMES.get(self.message_type or 0, "?")
        return f"<DHCP {name} xid={self.xid:#x} mac={self.client_mac} yiaddr={self.yiaddr}>"
