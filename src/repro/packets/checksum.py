"""Checksums used on the wire.

Two algorithms matter to the study:

* The one's-complement *Internet checksum* (RFC 1071) used by IPv4, UDP, TCP,
  ICMP and DCCP.  UDP/TCP/DCCP compute it over a pseudo-header that includes
  the IP addresses — which is exactly why rewriting an address in a NAT
  requires fixing the transport checksum.
* *CRC-32c* (Castagnoli) used by SCTP.  It does **not** cover a pseudo-header,
  which is why SCTP survives gateways that fall back to translating only the
  IP header (§4.4 of the paper).
"""

from __future__ import annotations

from ipaddress import IPv4Address


def internet_checksum_reference(data: bytes) -> int:
    """RFC 1071, the obvious byte-at-a-time implementation.

    Kept as the oracle for property tests of the fast version below.
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def internet_checksum(data: bytes) -> int:
    """RFC 1071 one's-complement sum of 16-bit words.

    Fast path: read the whole buffer as one big-endian integer and reduce it
    modulo ``0xFFFF``.  Because ``2**16 ≡ 1 (mod 2**16 - 1)``, the sum of a
    number's base-2**16 digits is congruent to the number itself — the
    "casting out nines" identity, in base 65536 — so the folded
    one's-complement sum is exactly ``N mod 0xFFFF`` (with the single
    ambiguity that a non-zero multiple of 0xFFFF folds to 0xFFFF, not 0).
    Both ``int.from_bytes`` and bignum ``%`` run at C speed, which makes
    this several times faster than summing an ``array("H")`` view for the
    MSS-size TCP payloads the bulk-transfer tests push through every
    gateway.  The reference implementation above is the oracle.
    """
    total = int.from_bytes(data, "big")
    if len(data) % 2:
        total <<= 8
    total %= 0xFFFF
    if total == 0 and data and any(data):
        total = 0xFFFF
    return (~total) & 0xFFFF


def checksum_of_parts(words_sum: int, payload: bytes) -> int:
    """One's-complement checksum from pre-summed header words plus a payload.

    ``words_sum`` is the plain integer sum of the 16-bit words of the
    (even-length) pseudo-header and transport header; ``payload`` is reduced
    with the same big-int identity as :func:`internet_checksum`.  Because
    ``2**16 ≡ 1 (mod 0xFFFF)``, the concatenation's residue equals the sum of
    its parts' residues, so for any input containing a nonzero byte this is
    exactly ``internet_checksum(header_bytes + payload)`` — without ever
    materializing the header bytes.  The transports use it on their hot
    paths; the byte-building forms remain for segments with options and as
    the property-test oracle.
    """
    total = words_sum
    if payload:
        part = int.from_bytes(payload, "big")
        if len(payload) % 2:
            part <<= 8
        total += part
    total %= 0xFFFF
    if total == 0:
        total = 0xFFFF  # a nonzero multiple of 0xFFFF folds to 0xFFFF, not 0
    return (~total) & 0xFFFF


def incremental_update(checksum: int, old_bytes: bytes, new_bytes: bytes) -> int:
    """RFC 1624 incremental checksum update (eqn. 3): ``HC' = ~(~HC + ~m + m')``.

    ``old_bytes``/``new_bytes`` are the rewritten 16-bit-aligned header words
    (addresses, ports) before and after translation.  This is how real NAT
    datapaths fix checksums — O(rewritten words), not O(packet) — and it is
    exact: starting from a checksum consistent with ``old_bytes``, the result
    equals a full recomputation over the rewritten packet.

    The full recompute (:func:`internet_checksum_reference`) is kept as the
    property-test oracle for this function.
    """
    if len(old_bytes) != len(new_bytes):
        raise ValueError("old/new rewrite material must have equal length")
    if len(old_bytes) % 2:
        raise ValueError("rewrite material must be 16-bit aligned")
    return incremental_update_words(
        checksum,
        int.from_bytes(old_bytes, "big"),
        int.from_bytes(new_bytes, "big"),
        len(old_bytes) // 2,
    )


def incremental_update_words(checksum: int, old: int, new: int, nwords: int) -> int:
    """RFC 1624 update with the rewrite material as packed integers.

    ``old``/``new`` carry ``nwords`` 16-bit words each (most-significant word
    first, leading zero words included — they still contribute ``0xFFFF``
    when complemented).  Same arithmetic as :func:`incremental_update`, the
    word sum being order-independent, without materializing any bytes; the
    NAT data path calls this per rewritten packet.
    """
    total = (~checksum) & 0xFFFF
    for _ in range(nwords):
        total += ((~old) & 0xFFFF) + (new & 0xFFFF)
        old >>= 16
        new >>= 16
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src: IPv4Address, dst: IPv4Address, protocol: int, length: int) -> bytes:
    """The IPv4 pseudo-header prepended for UDP/TCP/DCCP checksums."""
    if not 0 <= protocol <= 0xFF:
        raise ValueError(f"protocol out of range: {protocol}")
    if not 0 <= length <= 0xFFFF:
        raise ValueError(f"length out of range: {length}")
    return src.packed + dst.packed + bytes([0, protocol]) + length.to_bytes(2, "big")


def _build_crc32c_table() -> list:
    poly = 0x82F63B78  # reflected Castagnoli polynomial
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC32C_TABLE = _build_crc32c_table()


def crc32c(data: bytes) -> int:
    """CRC-32c (Castagnoli), as used by SCTP (RFC 4960 appendix B)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = _CRC32C_TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF
