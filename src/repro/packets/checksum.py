"""Checksums used on the wire.

Two algorithms matter to the study:

* The one's-complement *Internet checksum* (RFC 1071) used by IPv4, UDP, TCP,
  ICMP and DCCP.  UDP/TCP/DCCP compute it over a pseudo-header that includes
  the IP addresses — which is exactly why rewriting an address in a NAT
  requires fixing the transport checksum.
* *CRC-32c* (Castagnoli) used by SCTP.  It does **not** cover a pseudo-header,
  which is why SCTP survives gateways that fall back to translating only the
  IP header (§4.4 of the paper).
"""

from __future__ import annotations

import sys
from array import array
from ipaddress import IPv4Address


def internet_checksum_reference(data: bytes) -> int:
    """RFC 1071, the obvious byte-at-a-time implementation.

    Kept as the oracle for property tests of the fast version below.
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def internet_checksum(data: bytes) -> int:
    """RFC 1071 one's-complement sum of 16-bit words.

    Fast path: sum native-endian 16-bit words at C speed, fold, and
    byte-swap the folded result on little-endian machines.  One's-complement
    addition is endian-agnostic, so this equals the big-endian sum (the
    classic BSD trick); the reference implementation above is the oracle.
    """
    if len(data) % 2:
        data += b"\x00"
    total = sum(array("H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    if sys.byteorder == "little":
        total = ((total & 0xFF) << 8) | (total >> 8)
    return (~total) & 0xFFFF


def incremental_update(checksum: int, old_bytes: bytes, new_bytes: bytes) -> int:
    """RFC 1624 incremental checksum update (eqn. 3): ``HC' = ~(~HC + ~m + m')``.

    ``old_bytes``/``new_bytes`` are the rewritten 16-bit-aligned header words
    (addresses, ports) before and after translation.  This is how real NAT
    datapaths fix checksums — O(rewritten words), not O(packet) — and it is
    exact: starting from a checksum consistent with ``old_bytes``, the result
    equals a full recomputation over the rewritten packet.

    The full recompute (:func:`internet_checksum_reference`) is kept as the
    property-test oracle for this function.
    """
    if len(old_bytes) != len(new_bytes):
        raise ValueError("old/new rewrite material must have equal length")
    if len(old_bytes) % 2:
        raise ValueError("rewrite material must be 16-bit aligned")
    total = (~checksum) & 0xFFFF
    for i in range(0, len(old_bytes), 2):
        total += (~((old_bytes[i] << 8) | old_bytes[i + 1])) & 0xFFFF
        total += (new_bytes[i] << 8) | new_bytes[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src: IPv4Address, dst: IPv4Address, protocol: int, length: int) -> bytes:
    """The IPv4 pseudo-header prepended for UDP/TCP/DCCP checksums."""
    if not 0 <= protocol <= 0xFF:
        raise ValueError(f"protocol out of range: {protocol}")
    if not 0 <= length <= 0xFFFF:
        raise ValueError(f"length out of range: {length}")
    return src.packed + dst.packed + bytes([0, protocol]) + length.to_bytes(2, "big")


def _build_crc32c_table() -> list:
    poly = 0x82F63B78  # reflected Castagnoli polynomial
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table.append(crc)
    return table


_CRC32C_TABLE = _build_crc32c_table()


def crc32c(data: bytes) -> int:
    """CRC-32c (Castagnoli), as used by SCTP (RFC 4960 appendix B)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = _CRC32C_TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF
