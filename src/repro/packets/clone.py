"""Deep-enough packet copying.

Simulated packets are shared object references; anything that *mutates* a
header (NAT translation, a router's TTL decrement) must work on a copy so
traces and senders keep seeing what was actually on their wire.  Payload
bytes are immutable and shared.
"""

from __future__ import annotations

from repro.packets.dccp import DccpPacket
from repro.packets.icmp import IcmpMessage
from repro.packets.ipv4 import IPv4Packet
from repro.packets.sctp import SctpPacket
from repro.packets.tcp import TcpSegment
from repro.packets.udp import UdpDatagram


def clone_packet(packet: IPv4Packet) -> IPv4Packet:
    """Copy an IPv4 packet and its transport header (payload bytes shared)."""
    payload = packet.payload
    if isinstance(payload, (UdpDatagram, TcpSegment, SctpPacket, DccpPacket, IcmpMessage)):
        payload = payload.copy()
        if isinstance(payload, IcmpMessage) and payload.embedded is not None:
            payload.embedded = clone_packet(payload.embedded)
    return IPv4Packet(
        packet.src,
        packet.dst,
        packet.protocol,
        payload,
        ttl=packet.ttl,
        identification=packet.identification,
        tos=packet.tos,
        dont_fragment=packet.dont_fragment,
        header_checksum=packet.header_checksum,
        record_route=packet.record_route,
    )
