"""IPv4 packets, including the header options the study exercises.

§4.4 of the paper notes that some gateways do not decrement TTL and that few
honour the Record Route option; both behaviours are representable here and
are exercised by the quirk tests.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Any, Callable, Dict, List, Optional

from repro.packets.checksum import checksum_of_parts, internet_checksum

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_DCCP = 33
PROTO_SCTP = 132

PROTOCOL_NAMES = {
    PROTO_ICMP: "icmp",
    PROTO_TCP: "tcp",
    PROTO_UDP: "udp",
    PROTO_DCCP: "dccp",
    PROTO_SCTP: "sctp",
}

BASE_HEADER_BYTES = 20
DEFAULT_TTL = 64

IPOPT_END = 0
IPOPT_NOP = 1
IPOPT_RECORD_ROUTE = 7


class RecordRouteOption:
    """RFC 791 Record Route: routers append their address while slots last."""

    def __init__(self, slots: int = 4):
        if not 1 <= slots <= 9:
            raise ValueError(f"record route supports 1..9 slots, got {slots}")
        self.slots = slots
        self.addresses: List[IPv4Address] = []

    def record(self, address: IPv4Address) -> bool:
        """Append ``address`` if a slot is free; returns False when full."""
        if len(self.addresses) >= self.slots:
            return False
        self.addresses.append(address)
        return True

    def wire_size(self) -> int:
        return 3 + 4 * self.slots  # type, length, pointer, then slots

    def to_bytes(self) -> bytes:
        length = self.wire_size()
        pointer = 4 + 4 * len(self.addresses)
        body = b"".join(addr.packed for addr in self.addresses)
        body += b"\x00" * (4 * (self.slots - len(self.addresses)))
        return bytes([IPOPT_RECORD_ROUTE, length, pointer]) + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "RecordRouteOption":
        if len(data) < 3 or data[0] != IPOPT_RECORD_ROUTE:
            raise ValueError("not a record-route option")
        length = data[1]
        pointer = data[2]
        slots = (length - 3) // 4
        option = cls(slots)
        recorded = (pointer - 4) // 4
        for i in range(recorded):
            option.addresses.append(IPv4Address(data[3 + 4 * i : 7 + 4 * i]))
        return option

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RecordRoute {len(self.addresses)}/{self.slots} {self.addresses}>"


#: Registry mapping protocol numbers to payload parsers, filled in lazily by
#: the transport modules so that :meth:`IPv4Packet.from_bytes` can dispatch.
PAYLOAD_PARSERS: Dict[int, Callable[[bytes], Any]] = {}


class IPv4Packet:
    """An IPv4 packet with a structured transport payload.

    ``header_checksum`` is explicit: ``None`` means "to be computed on
    serialization"; a stale value survives rewrites so NAT checksum bugs are
    observable, as they are on real wires.
    """

    __slots__ = (
        "src",
        "dst",
        "protocol",
        "payload",
        "ttl",
        "identification",
        "tos",
        "dont_fragment",
        "header_checksum",
        "record_route",
        "_wire",
    )

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        protocol: int,
        payload: Any,
        ttl: int = DEFAULT_TTL,
        identification: int = 0,
        tos: int = 0,
        dont_fragment: bool = True,
        header_checksum: Optional[int] = None,
        record_route: Optional[RecordRouteOption] = None,
    ):
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.payload = payload
        self.ttl = ttl
        self.identification = identification
        self.tos = tos
        self.dont_fragment = dont_fragment
        self.header_checksum = header_checksum
        self.record_route = record_route
        self._wire: Optional[int] = None

    # -- sizes ------------------------------------------------------------

    def header_size(self) -> int:
        options = self.record_route.wire_size() if self.record_route else 0
        if options % 4:
            options += 4 - options % 4  # pad options to a 32-bit boundary
        return BASE_HEADER_BYTES + options

    def payload_size(self) -> int:
        if hasattr(self.payload, "wire_size"):
            return self.payload.wire_size()
        return len(self.payload)

    def wire_size(self) -> int:
        # Cached: in-flight packets are never resized (NAT and routers work
        # on fresh clones; rewrites touch addresses and TTL, not lengths).
        size = self._wire
        if size is None:
            size = self._wire = self.header_size() + self.payload_size()
        return size

    # -- checksums ---------------------------------------------------------

    def header_bytes(self, checksum: int) -> bytes:
        ihl = self.header_size() // 4
        total_length = self.wire_size()
        flags_frag = 0x4000 if self.dont_fragment else 0
        header = bytes(
            [
                (4 << 4) | ihl,
                self.tos,
            ]
        )
        header += total_length.to_bytes(2, "big")
        header += self.identification.to_bytes(2, "big")
        header += flags_frag.to_bytes(2, "big")
        header += bytes([self.ttl, self.protocol])
        header += checksum.to_bytes(2, "big")
        header += self.src.packed + self.dst.packed
        if self.record_route:
            options = self.record_route.to_bytes()
            if len(options) % 4:
                options += bytes([IPOPT_END]) * (4 - len(options) % 4)
            header += options
        return header

    def compute_header_checksum(self) -> int:
        if self.record_route is not None:
            return internet_checksum(self.header_bytes(0))
        src = self.src._ip  # ._ip avoids the IPv4Address.__int__ call
        dst = self.dst._ip
        words = (
            0x4500 + self.tos  # version 4, IHL 5 without options
            + self.wire_size()
            + self.identification
            + (0x4000 if self.dont_fragment else 0)
            + (self.ttl << 8) + self.protocol
            + (src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF)
        )
        return checksum_of_parts(words, b"")

    def fill_checksums(self) -> "IPv4Packet":
        """Compute the header checksum and (if supported) the payload's."""
        if hasattr(self.payload, "fill_checksum"):
            self.payload.fill_checksum(self.src, self.dst)
        self.header_checksum = self.compute_header_checksum()
        return self

    def header_checksum_ok(self) -> bool:
        if self.header_checksum is None:
            return False
        return self.header_checksum == self.compute_header_checksum()

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        checksum = self.header_checksum
        if checksum is None:
            checksum = self.compute_header_checksum()
        payload = self.payload.to_bytes() if hasattr(self.payload, "to_bytes") else bytes(self.payload)
        return self.header_bytes(checksum) + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Packet":
        if len(data) < BASE_HEADER_BYTES:
            raise ValueError(f"truncated IPv4 header: {len(data)} bytes")
        version = data[0] >> 4
        if version != 4:
            raise ValueError(f"not IPv4 (version={version})")
        ihl = (data[0] & 0x0F) * 4
        tos = data[1]
        total_length = int.from_bytes(data[2:4], "big")
        identification = int.from_bytes(data[4:6], "big")
        flags_frag = int.from_bytes(data[6:8], "big")
        ttl = data[8]
        protocol = data[9]
        checksum = int.from_bytes(data[10:12], "big")
        src = IPv4Address(data[12:16])
        dst = IPv4Address(data[16:20])
        record_route = None
        offset = BASE_HEADER_BYTES
        while offset < ihl:
            opt_type = data[offset]
            if opt_type == IPOPT_END:
                break
            if opt_type == IPOPT_NOP:
                offset += 1
                continue
            opt_len = data[offset + 1]
            if opt_type == IPOPT_RECORD_ROUTE:
                record_route = RecordRouteOption.from_bytes(data[offset : offset + opt_len])
            offset += opt_len
        raw_payload = data[ihl:total_length]
        parser = PAYLOAD_PARSERS.get(protocol)
        payload = parser(raw_payload) if parser else raw_payload
        return cls(
            src,
            dst,
            protocol,
            payload,
            ttl=ttl,
            identification=identification,
            tos=tos,
            dont_fragment=bool(flags_frag & 0x4000),
            header_checksum=checksum,
            record_route=record_route,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = PROTOCOL_NAMES.get(self.protocol, str(self.protocol))
        return f"<IPv4 {self.src}->{self.dst} {name} ttl={self.ttl} {self.payload!r}>"
