"""DCCP packets (RFC 4340), minimal but wire-accurate.

Only the generic header and the Request / Response / Ack / Data / Reset types
needed to attempt a connection.  DCCP's checksum covers an IPv4
pseudo-header (RFC 4340 §9.1), so — unlike SCTP — a gateway that rewrites
only the IP source address corrupts every DCCP packet it forwards.  This is
the mechanism behind the paper's observation that *no* tested device passed
DCCP while 18 passed SCTP.

We always use 48-bit sequence numbers (X=1), the common case.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Optional

from repro.packets.checksum import internet_checksum, pseudo_header
from repro.packets.ipv4 import PAYLOAD_PARSERS, PROTO_DCCP

DCCP_REQUEST = 0
DCCP_RESPONSE = 1
DCCP_DATA = 2
DCCP_ACK = 3
DCCP_DATAACK = 4
DCCP_RESET = 7

#: Generic header with X=1 (48-bit sequence numbers).
HEADER_BYTES = 16
#: Acknowledgement subheader (Response/Ack/DataAck/Reset carry one).
ACK_SUBHEADER_BYTES = 8

_TYPE_NAMES = {
    DCCP_REQUEST: "Request",
    DCCP_RESPONSE: "Response",
    DCCP_DATA: "Data",
    DCCP_ACK: "Ack",
    DCCP_DATAACK: "DataAck",
    DCCP_RESET: "Reset",
}

_TYPES_WITH_ACK = frozenset({DCCP_RESPONSE, DCCP_ACK, DCCP_DATAACK, DCCP_RESET})


class DccpPacket:
    """A DCCP packet (X=1 header)."""

    __slots__ = ("src_port", "dst_port", "packet_type", "seq", "ack", "service_code", "payload", "checksum")

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        packet_type: int,
        seq: int,
        ack: Optional[int] = None,
        service_code: int = 0,
        payload: bytes = b"",
        checksum: Optional[int] = None,
    ):
        for port in (src_port, dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port out of range: {port}")
        if packet_type in _TYPES_WITH_ACK and ack is None:
            raise ValueError(f"DCCP {_TYPE_NAMES.get(packet_type)} requires an ack number")
        self.src_port = src_port
        self.dst_port = dst_port
        self.packet_type = packet_type
        self.seq = seq & 0xFFFFFFFFFFFF
        self.ack = None if ack is None else ack & 0xFFFFFFFFFFFF
        self.service_code = service_code
        self.payload = payload
        self.checksum = checksum

    def header_size(self) -> int:
        size = HEADER_BYTES
        if self.packet_type in _TYPES_WITH_ACK:
            size += ACK_SUBHEADER_BYTES
        if self.packet_type == DCCP_REQUEST:
            size += 4  # service code
        return size

    def wire_size(self) -> int:
        return self.header_size() + len(self.payload)

    def _serialize(self, checksum: int) -> bytes:
        data_offset = self.header_size() // 4
        header = self.src_port.to_bytes(2, "big") + self.dst_port.to_bytes(2, "big")
        # CCVal=0; CsCov=0 means the checksum covers the whole packet
        # (RFC 4340 §9.2).
        header += bytes([data_offset, 0])
        header += checksum.to_bytes(2, "big")
        header += bytes([(self.packet_type << 1) | 1, 0])  # Res=0, Type, X=1; reserved
        header += self.seq.to_bytes(6, "big")  # 48-bit sequence number
        if self.packet_type in _TYPES_WITH_ACK:
            header += (0).to_bytes(2, "big") + (self.ack or 0).to_bytes(6, "big")
        if self.packet_type == DCCP_REQUEST:
            header += self.service_code.to_bytes(4, "big")
        return header + self.payload

    def compute_checksum(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> int:
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_DCCP, self.wire_size())
        return internet_checksum(pseudo + self._serialize(0))

    def fill_checksum(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> None:
        self.checksum = self.compute_checksum(src_ip, dst_ip)

    def checksum_ok(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> bool:
        if self.checksum is None:
            return False
        return self.checksum == self.compute_checksum(src_ip, dst_ip)

    def to_bytes(self) -> bytes:
        return self._serialize(self.checksum or 0)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DccpPacket":
        if len(data) < HEADER_BYTES:
            raise ValueError(f"truncated DCCP packet: {len(data)} bytes")
        src_port = int.from_bytes(data[0:2], "big")
        dst_port = int.from_bytes(data[2:4], "big")
        checksum = int.from_bytes(data[6:8], "big")
        packet_type = (data[8] >> 1) & 0x0F
        seq = int.from_bytes(data[10:16], "big")
        offset = HEADER_BYTES
        ack = None
        if packet_type in _TYPES_WITH_ACK:
            ack = int.from_bytes(data[offset + 2 : offset + 8], "big")
            offset += ACK_SUBHEADER_BYTES
        service_code = 0
        if packet_type == DCCP_REQUEST:
            service_code = int.from_bytes(data[offset : offset + 4], "big")
            offset += 4
        return cls(src_port, dst_port, packet_type, seq, ack, service_code, data[offset:], checksum)

    def copy(self) -> "DccpPacket":
        return DccpPacket(
            self.src_port,
            self.dst_port,
            self.packet_type,
            self.seq,
            self.ack,
            self.service_code,
            self.payload,
            self.checksum,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = _TYPE_NAMES.get(self.packet_type, str(self.packet_type))
        return f"<DCCP {name} {self.src_port}->{self.dst_port} seq={self.seq}>"


PAYLOAD_PARSERS[PROTO_DCCP] = DccpPacket.from_bytes
