"""Network nodes and their Ethernet interfaces.

A :class:`Node` is anything with interfaces: a host, a switch, or a home
gateway.  An :class:`Interface` is one Ethernet port — it has a MAC address,
optionally an IPv4 configuration, and is attached to at most one
:class:`~repro.netsim.link.Link` endpoint.

The simulator is intentionally agnostic about what travels over links; it
only requires frames to expose ``wire_size()`` (bytes on the wire) plus
``src``/``dst`` MAC attributes, which :class:`repro.packets.EthernetFrame`
provides.
"""

from __future__ import annotations

from ipaddress import IPv4Address, IPv4Network
from typing import Any, List, Optional, TYPE_CHECKING

from repro.netsim.addresses import MacAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.link import LinkEndpoint
    from repro.netsim.sim import Simulation


class Interface:
    """One Ethernet port of a :class:`Node`."""

    def __init__(self, node: "Node", index: int, mac: MacAddress):
        self.node = node
        self.index = index
        self.mac = mac
        self.endpoint: Optional["LinkEndpoint"] = None
        #: Largest IP datagram this port forwards (routers enforce on egress;
        #: smaller values + DF set produce ICMP Frag Needed — the PMTU
        #: discovery mechanics of §3.2.3).
        self.mtu = 1500
        # IPv4 configuration; populated statically or by the DHCP client.
        self.ip: Optional[IPv4Address] = None
        self.network: Optional[IPv4Network] = None
        self.gateway_ip: Optional[IPv4Address] = None
        self.frames_sent = 0
        self.frames_received = 0

    @property
    def name(self) -> str:
        return f"{self.node.name}.eth{self.index}"

    @property
    def attached(self) -> bool:
        return self.endpoint is not None

    def configure(
        self,
        ip: IPv4Address,
        network: IPv4Network,
        gateway_ip: Optional[IPv4Address] = None,
    ) -> None:
        """Assign an IPv4 address/netmask (and optional default gateway)."""
        if ip not in network:
            raise ValueError(f"{ip} is not inside {network}")
        self.ip = ip
        self.network = network
        self.gateway_ip = gateway_ip

    def deconfigure(self) -> None:
        self.ip = None
        self.network = None
        self.gateway_ip = None

    def transmit(self, frame: Any) -> None:
        """Hand a frame to the attached link for transmission."""
        if self.endpoint is None:
            # Mirrors real life: sending on an unplugged port loses the frame.
            return
        self.frames_sent += 1
        self.endpoint.transmit(frame)

    def deliver(self, frame: Any) -> None:
        """Called by the link when a frame arrives at this port."""
        self.frames_received += 1
        self.node.receive_frame(self, frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Interface {self.name} mac={self.mac} ip={self.ip}>"


class Node:
    """Base class for every simulated device."""

    def __init__(self, sim: "Simulation", name: str):
        self.sim = sim
        self.name = name
        self.interfaces: List[Interface] = []

    def add_interface(self, mac: MacAddress) -> Interface:
        iface = Interface(self, len(self.interfaces), mac)
        self.interfaces.append(iface)
        return iface

    def iface(self, index: int) -> Interface:
        return self.interfaces[index]

    def receive_frame(self, iface: Interface, frame: Any) -> None:
        """Frame arrival hook; subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
