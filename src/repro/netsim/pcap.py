"""Export packet traces as real pcap files.

A :class:`~repro.netsim.trace.PacketTrace` holds structured frames; this
module serializes them into the classic libpcap file format (magic
0xa1b2c3d4, LINKTYPE_ETHERNET), so captures from the simulated testbed open
directly in Wireshark/tcpdump — handy for debugging gateway behaviour and
for demonstrating that the wire formats are real.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable

from repro.netsim.trace import PacketTrace, TraceEntry

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
DEFAULT_SNAPLEN = 65535


def write_pcap_header(stream: BinaryIO, snaplen: int = DEFAULT_SNAPLEN) -> None:
    stream.write(
        struct.pack(
            "<IHHiIII",
            PCAP_MAGIC,
            PCAP_VERSION[0],
            PCAP_VERSION[1],
            0,  # thiszone
            0,  # sigfigs
            snaplen,
            LINKTYPE_ETHERNET,
        )
    )


def write_pcap_record(stream: BinaryIO, timestamp: float, frame_bytes: bytes, snaplen: int = DEFAULT_SNAPLEN) -> None:
    seconds = int(timestamp)
    micros = int(round((timestamp - seconds) * 1_000_000))
    if micros >= 1_000_000:
        seconds += 1
        micros -= 1_000_000
    captured = frame_bytes[:snaplen]
    stream.write(struct.pack("<IIII", seconds, micros, len(captured), len(frame_bytes)))
    stream.write(captured)


def dump_entries(stream: BinaryIO, entries: Iterable[TraceEntry], snaplen: int = DEFAULT_SNAPLEN) -> int:
    """Write a pcap with the given trace entries; returns the record count."""
    write_pcap_header(stream, snaplen)
    count = 0
    for entry in entries:
        write_pcap_record(stream, entry.timestamp, entry.frame.to_bytes(), snaplen)
        count += 1
    return count


def save_trace(trace: PacketTrace, path: str, snaplen: int = DEFAULT_SNAPLEN) -> int:
    """Write a whole trace to ``path``; returns the record count."""
    with open(path, "wb") as stream:
        return dump_entries(stream, trace.entries, snaplen)


def read_pcap(path: str):
    """Parse a pcap back into ``[(timestamp, raw_frame_bytes), ...]``.

    Only the classic little-endian microsecond format this module writes;
    used by tests to verify round-trips and by notebooks to post-process.
    """
    records = []
    with open(path, "rb") as stream:
        header = stream.read(24)
        if len(header) < 24:
            raise ValueError("truncated pcap header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic != PCAP_MAGIC:
            raise ValueError(f"unsupported pcap magic {magic:#x}")
        while True:
            record_header = stream.read(16)
            if not record_header:
                break
            if len(record_header) < 16:
                raise ValueError("truncated pcap record header")
            seconds, micros, caplen, _origlen = struct.unpack("<IIII", record_header)
            data = stream.read(caplen)
            if len(data) < caplen:
                raise ValueError("truncated pcap record body")
            records.append((seconds + micros / 1_000_000, data))
    return records
