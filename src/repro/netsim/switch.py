"""VLAN-aware learning Ethernet switch.

The testbed of the paper (Figure 1) isolates every home gateway on its own
pair of VLANs using HP-2524 switches: VLAN ``1000+n`` carries gateway *n*'s
WAN traffic, VLAN ``2000+n`` its LAN traffic.  :class:`VlanSwitch` models an
access-port switch — each port belongs to exactly one VLAN, MAC learning and
flooding are confined to a VLAN — which is all the study needs.

A noteworthy detail from §4.4: some gateways use the *same* MAC address on
their WAN and LAN ports, which forced the authors to use physically separate
switches for the two sides.  The same failure reproduces here if both sides
share one switch: the MAC table flip-flops between ports.  The testbed
therefore builds two switches, as the paper did.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.netsim.addresses import MacAddress
from repro.netsim.node import Interface, Node
from repro.netsim.sim import Simulation


class VlanSwitch(Node):
    """A learning switch with per-port access VLANs."""

    def __init__(self, sim: Simulation, name: str, mac_pool: Any):
        super().__init__(sim, name)
        self._mac_pool = mac_pool
        self._port_vlan: Dict[int, int] = {}
        # (vlan, mac) -> port index
        self._mac_table: Dict[Tuple[int, MacAddress], int] = {}
        self.frames_switched = 0
        self.frames_flooded = 0

    def new_port(self, vlan: int) -> Interface:
        """Add an access port on ``vlan`` and return its interface."""
        if vlan <= 0:
            raise ValueError(f"VLAN id must be positive, got {vlan}")
        iface = self.add_interface(next(self._mac_pool))
        self._port_vlan[iface.index] = vlan
        return iface

    def vlan_of(self, iface: Interface) -> int:
        return self._port_vlan[iface.index]

    def receive_frame(self, iface: Interface, frame: Any) -> None:
        vlan = self._port_vlan[iface.index]
        self._mac_table[(vlan, frame.src)] = iface.index
        dst = frame.dst
        if dst._value == 0xFFFFFFFFFFFF or (dst._value >> 40) & 1:  # broadcast/multicast
            self._flood(vlan, iface.index, frame)
            return
        out_port = self._mac_table.get((vlan, dst))
        if out_port is None:
            self._flood(vlan, iface.index, frame)
            return
        if out_port == iface.index:
            return  # destination is back where it came from; drop
        self.frames_switched += 1
        self.interfaces[out_port].transmit(frame)

    def _flood(self, vlan: int, ingress_port: int, frame: Any) -> None:
        self.frames_flooded += 1
        for iface in self.interfaces:
            if iface.index == ingress_port:
                continue
            if self._port_vlan.get(iface.index) != vlan:
                continue
            iface.transmit(frame)

    def forget(self) -> None:
        """Flush the MAC table (e.g. after re-cabling)."""
        self._mac_table.clear()
