"""Event scheduler and virtual clock.

The simulation core is a classic calendar queue: a binary heap of
``(time, sequence, callback)`` entries.  The ``sequence`` counter makes the
ordering total and deterministic — two events scheduled for the same instant
fire in the order they were scheduled, which keeps every run of the
reproduction bit-for-bit repeatable.

Time is a float in seconds.  The measurement suite routinely simulates hours
of idle time (TCP binding timeouts run to a 24-hour cutoff), which costs
nothing here: the clock jumps straight to the next event.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, List, Optional, Tuple


class CancelledError(RuntimeError):
    """Raised when interacting with a timer that was cancelled."""


class Timer:
    """A cancellable, reschedulable handle for a pending event.

    ``Timer`` is the workhorse of every timeout in the reproduction: NAT
    binding timers, TCP retransmission timers, DHCP lease timers and the
    measurement sleep timers are all ``Timer`` instances.  A fired or
    cancelled timer can be re-armed with :meth:`restart`.
    """

    __slots__ = ("_sim", "_callback", "_args", "_deadline", "_alive")

    def __init__(self, sim: "Simulation", callback: Callable[..., None], *args: Any):
        self._sim = sim
        self._callback = callback
        self._args = args
        self._deadline: Optional[float] = None
        self._alive = False

    @property
    def deadline(self) -> Optional[float]:
        """Absolute firing time, or ``None`` when not armed."""
        return self._deadline if self._alive else None

    @property
    def armed(self) -> bool:
        """True while the timer is pending."""
        return self._alive

    def start(self, delay: float) -> "Timer":
        """Arm the timer ``delay`` seconds from now; re-arms if already armed."""
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay}")
        self._alive = True
        self._deadline = self._sim.now + delay
        self._sim._schedule_abs(self._deadline, self._fire)
        return self

    # ``restart`` reads better at call sites that re-arm an existing timer.
    restart = start

    def cancel(self) -> None:
        """Disarm the timer.  Safe to call on an unarmed timer."""
        self._alive = False
        self._deadline = None

    def _fire(self) -> None:
        # A restarted timer leaves stale heap entries behind; only the entry
        # matching the current deadline may fire.
        if not self._alive or self._sim.now != self._deadline:
            return
        self._alive = False
        self._deadline = None
        self._callback(*self._args)


class Simulation:
    """The virtual world: a clock, an event heap, and a seeded RNG.

    All model objects (hosts, links, gateways) hold a reference to the one
    ``Simulation`` they live in and schedule their behaviour through it.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.rng = random.Random(seed)
        self.events_processed = 0

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._schedule_abs(self.now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule into the past (when={when}, now={self.now})")
        self._schedule_abs(when, callback, *args)

    def timer(self, callback: Callable[..., None], *args: Any) -> Timer:
        """Create an (unarmed) :class:`Timer` bound to this simulation."""
        return Timer(self, callback, *args)

    def _schedule_abs(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        if args:
            entry = (when, next(self._seq), lambda: callback(*args))
        else:
            entry = (when, next(self._seq), callback)
        heapq.heappush(self._heap, entry)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Process one event.  Returns False when the heap is empty."""
        if not self._heap:
            return False
        when, _seq, callback = heapq.heappop(self._heap)
        self.now = when
        self.events_processed += 1
        callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event heap.

        ``until`` stops the clock at an absolute time (pending later events
        stay queued and the clock is advanced to ``until``).  ``max_events``
        guards against runaway models.
        """
        processed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = max(self.now, until)
                return
            if max_events is not None and processed >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            self.step()
            processed += 1
        if until is not None:
            self.now = max(self.now, until)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Advance the clock by ``duration`` seconds."""
        self.run(until=self.now + duration, max_events=max_events)

    @property
    def pending_events(self) -> int:
        """Number of events still queued (stale timer entries included)."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulation t={self.now:.6f}s pending={len(self._heap)}>"
