"""Event scheduler and virtual clock.

The simulation core is a classic calendar queue: a binary heap of
``(time, sequence, callback, args)`` entries.  The ``sequence`` counter makes
the ordering total and deterministic — two events scheduled for the same
instant fire in the order they were scheduled, which keeps every run of the
reproduction bit-for-bit repeatable.  Argument tuples are stored directly in
the heap entry (no per-event closure allocation), which matters: a reduced
survey run pushes around a million events.

Time is a float in seconds.  The measurement suite routinely simulates hours
of idle time (TCP binding timeouts run to a 24-hour cutoff), which costs
nothing here: the clock jumps straight to the next event.

Cancelled and restarted timers are lazy: the superseded heap entry stays
queued and is discarded when popped.  The scheduler counts those stale
entries and compacts the heap when more than half of it is dead, so a 24-h
binding-timeout run with millions of re-armed NAT timers keeps its heap (and
its ``heappush`` cost) proportional to the *live* event count.
"""

from __future__ import annotations

import heapq
import itertools
import math
from heapq import heappop, heappush
import random
from typing import Any, Callable, List, Optional, Tuple

#: Never bother compacting heaps smaller than this.
_COMPACT_MIN_HEAP = 64


class CancelledError(RuntimeError):
    """Raised when interacting with a timer that was cancelled."""


class WatchdogExpired(RuntimeError):
    """The simulation tried to advance past its virtual-time watchdog limit.

    Campaign shards arm this (see ``SurveyRunner``) so a runaway measurement
    — a probe stuck re-arming timers forever against a crashed gateway —
    fails loudly instead of spinning, and the failure is deterministic: it
    depends only on virtual time, never on wall-clock.
    """


class Timer:
    """A cancellable, reschedulable handle for a pending event.

    ``Timer`` is the workhorse of every timeout in the reproduction: NAT
    binding timers, TCP retransmission timers, DHCP lease timers and the
    measurement sleep timers are all ``Timer`` instances.  A fired or
    cancelled timer can be re-armed with :meth:`restart`.

    Liveness of a heap entry is decided by a generation counter: every
    ``start``/``cancel`` bumps ``_gen``, and an entry only fires when the
    generation it was scheduled with is still current.  (A float-equality
    check on the deadline is not enough — a timer restarted to a coincident
    deadline could be fired by the stale entry.)
    """

    __slots__ = ("_sim", "_callback", "_args", "_deadline", "_alive", "_gen", "_pending")

    def __init__(self, sim: "Simulation", callback: Callable[..., None], *args: Any):
        self._sim = sim
        self._callback = callback
        self._args = args
        self._deadline: Optional[float] = None
        self._alive = False
        #: Generation of the currently armed schedule; heap entries carry the
        #: generation they were scheduled under.
        self._gen = 0
        #: Heap entries (live or stale) still referencing this timer.
        self._pending = 0

    @property
    def deadline(self) -> Optional[float]:
        """Absolute firing time, or ``None`` when not armed."""
        return self._deadline if self._alive else None

    @property
    def armed(self) -> bool:
        """True while the timer is pending."""
        return self._alive

    def start(self, delay: float) -> "Timer":
        """Arm the timer ``delay`` seconds from now; re-arms if already armed."""
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay}")
        if self._alive:
            # The previously scheduled entry is superseded and now stale.
            self._sim._stale_entries += 1
        self._gen += 1
        self._alive = True
        self._deadline = self._sim.now + delay
        self._sim._schedule_abs(self._deadline, self._fire, self._gen)
        self._pending += 1
        return self

    # ``restart`` reads better at call sites that re-arm an existing timer.
    restart = start

    def start_at(self, deadline: float) -> "Timer":
        """Arm the timer at an *absolute* instant.

        The fast-path lazy re-arm pattern (NAT idle timers, TCP
        retransmission timers) precomputes the exact legacy deadline float
        and defers the heap push; when the deferred wake-up finally chases
        the real deadline it must land on the *same* float instant a
        ``restart(deadline - now)`` at activity time would have produced.
        ``start_at`` schedules that instant verbatim instead of round-
        tripping it through ``now + (deadline - now)``, which is not an
        identity under IEEE-754 rounding.
        """
        if deadline < self._sim.now:
            raise ValueError(f"timer deadline in the past: {deadline} < {self._sim.now}")
        if self._alive:
            self._sim._stale_entries += 1
        self._gen += 1
        self._alive = True
        self._deadline = deadline
        self._sim._schedule_abs(deadline, self._fire, self._gen)
        self._pending += 1
        return self

    def cancel(self) -> None:
        """Disarm the timer.  Safe to call on an unarmed timer."""
        if self._alive:
            self._sim._stale_entries += 1
            self._gen += 1  # invalidate the pending heap entry
        self._alive = False
        self._deadline = None

    def _fire(self, gen: int) -> None:
        self._pending -= 1
        if gen != self._gen or not self._alive:
            # Stale entry from a cancelled or restarted schedule.
            self._sim._stale_entries -= 1
            return
        self._alive = False
        self._deadline = None
        bus = self._sim.bus
        if bus is not None:
            bus.emit("timer.fire", cb=getattr(self._callback, "__qualname__", type(self._callback).__name__))
        self._callback(*self._args)


class Simulation:
    """The virtual world: a clock, an event heap, and a seeded RNG.

    All model objects (hosts, links, gateways) hold a reference to the one
    ``Simulation`` they live in and schedule their behaviour through it.

    Everything downstream of a ``Simulation`` is a pure function of its
    ``seed`` plus the model built on top of it: the event heap breaks
    time ties by insertion sequence, and all stochastic decisions draw
    either from ``self.rng`` or from RNGs derived deterministically from
    ``seed`` (per-link impairments, per-shard survey seeds).  That is the
    foundation of the repo-wide ``jobs=N ≡ jobs=1`` contract.

    Observability attaches here: :meth:`repro.obs.TraceBus.attach` sets
    ``self.bus``, and every publisher in the model guards its emission
    with one ``sim.bus is not None`` check — so an unobserved run pays
    one attribute load per would-be event, and an observed run emits
    passively (no RNG draws, no scheduling) and measures identically.
    """

    #: Process-wide count of Simulation constructions.  Test hook for the
    #: zero-resimulation guarantee: ``repro report --from DIR`` must render
    #: without this moving.
    constructed_total = 0

    def __init__(self, seed: int = 0):
        Simulation.constructed_total += 1
        self.now: float = 0.0
        self.seed = seed
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = itertools.count()
        self.rng = random.Random(seed)
        self.events_processed = 0
        #: Observability hook: a :class:`repro.obs.TraceBus` when the run is
        #: being flight-recorded, else ``None``.  Publishers guard every
        #: emission with an ``is not None`` check, so the disabled path costs
        #: one attribute load per would-be event and allocates nothing.
        self.bus = None
        #: Virtual-time ceiling; processing an event past it raises
        #: :class:`WatchdogExpired`.  ``None`` disables the watchdog.
        self.watchdog_limit: Optional[float] = None
        # Stale-entry bookkeeping (cancelled/restarted timers).
        self._stale_entries = 0
        #: Number of compaction passes run.
        self.stale_purges = 0
        #: Total dead heap entries dropped by compaction.
        self.stale_entries_purged = 0
        #: Master switch for the hybrid flow-level fast path.  When True
        #: (the default), links, the gateway forwarding plane and the
        #: idle-timer machinery advance their state with closed-form
        #: analytic kernels between interesting instants instead of
        #: scheduling every intermediate event.  The kernels execute the
        #: *same* float arithmetic as the staged event path, so results are
        #: bit-identical; publishers that need full event fidelity (an
        #: attached trace bus, impaired links) fall back per call site.
        self.fastpath = True
        #: Heap events elided by the fast path (the analytic kernels'
        #: dividend).  ``events_processed + fastpath_events_saved`` is the
        #: engine-independent work measure reported as ``segments_modeled``.
        self.fastpath_events_saved = 0
        #: Idle→busy transitions of an analytic kernel (one "window" of
        #: closed-form advance: a link busy run, a forwarding service chain).
        self.fastpath_windows = 0

    @property
    def segments_modeled(self) -> int:
        """Work units modeled, independent of engine: processed events plus
        the events the analytic fast path proved it did not need to run."""
        return self.events_processed + self.fastpath_events_saved

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heap = self._heap
        if self._stale_entries and self._stale_entries * 2 > len(heap) >= _COMPACT_MIN_HEAP:
            self._compact()
        heappush(heap, (self.now + delay, next(self._seq), callback, args))

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule into the past (when={when}, now={self.now})")
        heap = self._heap
        if self._stale_entries and self._stale_entries * 2 > len(heap) >= _COMPACT_MIN_HEAP:
            self._compact()
        heappush(heap, (when, next(self._seq), callback, args))

    def timer(self, callback: Callable[..., None], *args: Any) -> Timer:
        """Create an (unarmed) :class:`Timer` bound to this simulation."""
        return Timer(self, callback, *args)

    def _schedule_abs(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        heap = self._heap
        if self._stale_entries and self._stale_entries * 2 > len(heap) >= _COMPACT_MIN_HEAP:
            self._compact()
        heapq.heappush(heap, (when, next(self._seq), callback, args))

    def _compact(self) -> None:
        """Drop dead timer entries and re-heapify.

        An entry is dead when it belongs to a :class:`Timer` whose generation
        has moved on (cancelled or restarted since it was pushed).  Ordinary
        events are never stale.
        """
        fire = Timer._fire
        live: List[Tuple[float, int, Callable[..., None], tuple]] = []
        dropped = 0
        for entry in self._heap:
            callback = entry[2]
            if getattr(callback, "__func__", None) is fire:
                timer: Timer = callback.__self__
                if entry[3][0] != timer._gen or not timer._alive:
                    timer._pending -= 1
                    dropped += 1
                    continue
            live.append(entry)
        if dropped:
            heapq.heapify(live)
            self._heap[:] = live
            self.stale_purges += 1
            self.stale_entries_purged += dropped
            self._stale_entries -= dropped

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Process one event.  Returns False when the heap is empty."""
        if not self._heap:
            return False
        if self.watchdog_limit is not None and self._heap[0][0] > self.watchdog_limit:
            raise WatchdogExpired(
                f"virtual-time watchdog expired: next event at t={self._heap[0][0]:.3f}s "
                f"is past the limit of {self.watchdog_limit:.3f}s"
            )
        when, _seq, callback, args = heappop(self._heap)
        self.now = when
        self.events_processed += 1
        callback(*args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event heap.

        ``until`` stops the clock at an absolute time (pending later events
        stay queued and the clock is advanced to ``until``).  ``max_events``
        guards against runaway models.
        """
        processed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = max(self.now, until)
                return
            if max_events is not None and processed >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            self.step()
            processed += 1
        if until is not None:
            self.now = max(self.now, until)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Advance the clock by ``duration`` seconds."""
        self.run(until=self.now + duration, max_events=max_events)

    # -- partition support -------------------------------------------------

    def next_event_time(self) -> float:
        """Earliest queued event's timestamp, or ``inf`` when the heap is dry.

        This is the quantity a conservative partitioned run reports to its
        synchronization hub each round (see :mod:`repro.core.partition`): the
        hub's global event floor is the minimum of every island's
        ``next_event_time()`` and the arrival instants of boundary frames
        still awaiting injection.

        Returns
        -------
        float
            ``self._heap[0][0]`` when events are pending, else
            ``math.inf``.  Stale timer entries are *not* filtered out —
            a stale head is merely conservative (the reported floor is
            never later than the true one) and the entry is discarded
            normally when popped, so window progress is still guaranteed.
        """
        heap = self._heap
        return heap[0][0] if heap else math.inf

    def run_window(self, bound: float) -> None:
        """Process every event strictly before ``bound``; leave ``t >= bound``.

        The conservative-lookahead primitive: a partition may safely execute
        all events earlier than the next global bound ``B = M + d`` (global
        event floor ``M`` plus the minimum boundary-link propagation delay
        ``d``), because no boundary frame shipped by any peer during the
        window can arrive before ``B``.  Contrast with :meth:`run`, whose
        ``until`` is *inclusive* — windows must be half-open ``[.., bound)``
        so an event landing exactly on a bound executes in exactly one
        window.

        Parameters
        ----------
        bound : float
            Exclusive virtual-time horizon.  The clock is *not* advanced to
            ``bound`` when the heap drains early; the caller owns clock
            semantics between windows (boundary injections are scheduled at
            absolute instants ``>= now`` regardless).

        Raises
        ------
        WatchdogExpired
            When the next event lies past ``watchdog_limit`` (inherited
            from :meth:`step`).
        """
        heap = self._heap
        while heap and heap[0][0] < bound:
            self.step()

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued (stale timer entries excluded)."""
        return len(self._heap) - self._stale_entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulation t={self.now:.6f}s pending={self.pending_events}>"
