"""Full-duplex point-to-point links.

A :class:`Link` joins two interfaces with independent transmitters per
direction.  Each transmitter serializes frames at the link rate through a
drop-tail queue, then the frame propagates for ``delay`` seconds — the usual
store-and-forward model.  The testbed's "100 Mb/sec Ethernet" links are
``Link(sim, rate_bps=100e6)``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.netsim.node import Interface
from repro.netsim.queues import DropTailQueue
from repro.netsim.sim import Simulation

#: Default transmit-queue size; generous enough that host-side queues are
#: never the bottleneck (the interesting buffers live inside the gateways).
DEFAULT_TX_QUEUE_BYTES = 4 * 1024 * 1024


def frame_wire_size(frame: Any) -> int:
    """Bytes a frame occupies on the wire (delegates to the frame)."""
    size = frame.wire_size()
    if size <= 0:
        raise ValueError(f"frame reports non-positive wire size: {size}")
    return size


class LinkEndpoint:
    """One direction-of-entry into a link: the transmitter at one end."""

    def __init__(self, link: "Link", iface: Interface, queue_bytes: int):
        self.link = link
        self.iface = iface
        self.peer: Optional["LinkEndpoint"] = None
        self.queue = DropTailQueue(queue_bytes)
        self._transmitting = False

    def transmit(self, frame: Any) -> None:
        """Queue a frame for serialization onto the wire."""
        if not self.queue.offer(frame, frame_wire_size(frame)):
            return  # tail drop
        if not self._transmitting:
            self._start_next()

    def _start_next(self) -> None:
        entry = self.queue.poll()
        if entry is None:
            self._transmitting = False
            return
        frame, size = entry
        self._transmitting = True
        tx_time = size * 8.0 / self.link.rate_bps
        sim = self.link.sim
        sim.schedule(tx_time, self._transmission_done, frame)

    def _transmission_done(self, frame: Any) -> None:
        peer = self.peer
        if peer is not None and not self.link.broken:
            self.link.sim.schedule(self.link.delay, peer.iface.deliver, frame)
            self.link.frames_carried += 1
        self._start_next()


class Link:
    """A full-duplex wire between exactly two interfaces."""

    def __init__(
        self,
        sim: Simulation,
        rate_bps: float = 100e6,
        delay: float = 50e-6,
        queue_bytes: int = DEFAULT_TX_QUEUE_BYTES,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay < 0:
            raise ValueError(f"link delay must be non-negative, got {delay}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self._queue_bytes = queue_bytes
        self.endpoint_a: Optional[LinkEndpoint] = None
        self.endpoint_b: Optional[LinkEndpoint] = None
        self.broken = False
        self.frames_carried = 0

    def attach(self, iface_a: Interface, iface_b: Interface) -> "Link":
        """Plug both ends in."""
        if self.endpoint_a is not None or self.endpoint_b is not None:
            raise RuntimeError("link already attached")
        if iface_a.attached or iface_b.attached:
            raise RuntimeError("interface already attached to another link")
        self.endpoint_a = LinkEndpoint(self, iface_a, self._queue_bytes)
        self.endpoint_b = LinkEndpoint(self, iface_b, self._queue_bytes)
        self.endpoint_a.peer = self.endpoint_b
        self.endpoint_b.peer = self.endpoint_a
        iface_a.endpoint = self.endpoint_a
        iface_b.endpoint = self.endpoint_b
        return self

    def sever(self) -> None:
        """Cut the cable: in-flight frames are lost, future sends go nowhere."""
        self.broken = True

    def mend(self) -> None:
        self.broken = False
