"""Full-duplex point-to-point links.

A :class:`Link` joins two interfaces with independent transmitters per
direction.  Each transmitter serializes frames at the link rate through a
drop-tail queue, then the frame propagates for ``delay`` seconds — the usual
store-and-forward model.  The testbed's "100 Mb/sec Ethernet" links are
``Link(sim, rate_bps=100e6)``.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappush
from typing import Any, Optional

from repro.netsim.impair import Impairment, LinkImpairer
from repro.netsim.node import Interface
from repro.netsim.queues import DropTailQueue
from repro.netsim.sim import _COMPACT_MIN_HEAP, Simulation

#: Default transmit-queue size; generous enough that host-side queues are
#: never the bottleneck (the interesting buffers live inside the gateways).
DEFAULT_TX_QUEUE_BYTES = 4 * 1024 * 1024


def frame_wire_size(frame: Any) -> int:
    """Bytes a frame occupies on the wire (delegates to the frame)."""
    size = frame.wire_size()
    if size <= 0:
        raise ValueError(f"frame reports non-positive wire size: {size}")
    return size


class LinkEndpoint:
    """One direction-of-entry into a link: the transmitter at one end.

    Two engines share this transmitter and its timing model:

    * the staged event path (``_start_next``/``_transmission_done``), which
      schedules a serialization-done event and then a delivery event per
      frame — required whenever the link is impaired, severed, or the run
      is being flight-recorded; and
    * the eager fast path, which advances a ``busy_until`` serialization
      frontier in closed form and schedules *one* delivery event per frame.
      The frontier arithmetic is literally the staged path's float
      expressions evaluated early (``start = max(now, busy_until)``;
      ``done = start + tx_time``; ``deliver_at = done + delay``), so the
      delivery instants are bit-identical and the two engines are
      interchangeable mid-run at link-idle boundaries.
    """

    __slots__ = (
        "link",
        "iface",
        "peer",
        "queue",
        "_transmitting",
        "frames_dropped",
        "_busy_until",
        "_pending_frames",
        "_pending_bytes",
        "_inflight",
        "_next_eid",
        "_drain_scheduled",
    )

    def __init__(self, link: "Link", iface: Interface, queue_bytes: int):
        self.link = link
        self.iface = iface
        self.peer: Optional["LinkEndpoint"] = None
        self.queue = DropTailQueue(queue_bytes)
        self._transmitting = False
        #: Frames this transmitter lost: tail drops, flushed-on-sever queue
        #: contents, and frames in flight when the cable was cut.
        self.frames_dropped = 0
        # Eager-kernel state: the serialization frontier, the ledger of
        # accepted-but-not-yet-started frames (for tail-drop accounting),
        # and the registry of in-flight deliveries (voidable by flush).
        self._busy_until = 0.0
        self._pending_frames: deque = deque()  # (eid, start_time, size)
        self._pending_bytes = 0
        self._inflight: dict = {}  # eid -> start_time
        self._next_eid = 0
        self._drain_scheduled = False

    def transmit(self, frame: Any) -> None:
        """Queue a frame for serialization onto the wire."""
        link = self.link
        sim = link.sim
        if (
            sim.fastpath
            and sim.bus is None
            and link.impairer is None
            and not link.broken
            and not self._transmitting
            and self.peer is not None
        ):
            self._transmit_eager(frame, sim)
            return
        if not self.queue.offer(frame, frame_wire_size(frame)):
            self.frames_dropped += 1  # tail drop
            bus = sim.bus
            if bus is not None:
                bus.emit("link.drop", link=link.label, cause="tail_drop")
            return
        if not self._transmitting:
            if self._busy_until > sim.now:
                # Eager frames still own the transmitter; kick the staged
                # engine once the frontier drains (mid-run mode flip, e.g.
                # a trace bus attached while a link was busy).
                if not self._drain_scheduled:
                    self._drain_scheduled = True
                    sim.schedule_at(self._busy_until, self._drain_after_eager)
                return
            self._start_next()

    def _transmit_eager(self, frame: Any, sim) -> None:
        now = sim.now
        size = frame.wire_size()  # the staged offer path keeps the guard
        pending = self._pending_frames
        while pending and pending[0][0] <= now:
            self._pending_bytes -= pending.popleft()[1]
        queue = self.queue
        if self._pending_bytes + size > queue.capacity_bytes:
            queue.dropped += 1
            self.frames_dropped += 1  # tail drop
            return
        link = self.link
        busy = self._busy_until
        start = busy if busy > now else now
        if start <= now:
            sim.fastpath_windows += 1
        done = start + size * 8.0 / link.rate_bps
        self._busy_until = done
        eid = self._next_eid
        self._next_eid = eid + 1
        if start > now:
            pending.append((start, size))
            self._pending_bytes += size
        queue.enqueued += 1
        self._inflight[eid] = (start, done)
        # Inlined sim.schedule_at: ``done + delay >= now`` by construction,
        # so the past-check is redundant on the hottest push in the model.
        heap = sim._heap
        if sim._stale_entries and sim._stale_entries * 2 > len(heap) >= _COMPACT_MIN_HEAP:
            sim._compact()
        heappush(heap, (done + link.delay, next(sim._seq), self._eager_deliver, (frame, eid)))
        sim.fastpath_events_saved += 1  # the staged serialization-done event

    def _eager_deliver(self, frame: Any, eid: int) -> None:
        entry = self._inflight.pop(eid, None)
        if entry is None:
            return  # voided by a crash flush while still queued
        link = self.link
        done = entry[1]
        if (link.broken and done >= link._broken_at) or (
            link._outages and link._severed_at(done)
        ):
            # The cable was cut before this frame finished serializing; the
            # staged engine drops it at its serialization-done event.  The
            # closed-outage check covers a sever()+mend() cycle that both
            # happened before this (later) delivery event fired — the wire
            # was down at the instant the frame would have left it.
            self.frames_dropped += 1
            bus = link.sim.bus
            if bus is not None:
                bus.emit("link.drop", link=link.label, cause="severed")
            return
        link.frames_carried += 1
        # NOT inlined: PacketTrace instruments Interface.deliver per instance.
        self.peer.iface.deliver(frame)

    def _drain_after_eager(self) -> None:
        self._drain_scheduled = False
        if not self._transmitting:
            self._start_next()

    def flush(self) -> None:
        """Discard everything queued for transmission (counted as drops)."""
        flushed = len(self.queue)
        self.frames_dropped += flushed
        self.queue.clear()
        # Void eager frames that have not started serializing yet; a frame
        # already on the wire (started) propagates, exactly as in the staged
        # engine where only *queued* frames are flushed.
        now = self.link.sim.now
        if self._inflight:
            new_busy = now
            for eid, (start, done) in list(self._inflight.items()):
                if start > now:
                    del self._inflight[eid]
                    self.frames_dropped += 1
                    flushed += 1
                elif done > new_busy:
                    new_busy = done  # still serializing; it finishes and propagates
            self._busy_until = new_busy
            self._pending_frames.clear()
            self._pending_bytes = 0
        if flushed:
            bus = self.link.sim.bus
            if bus is not None:
                bus.emit("link.drop", link=self.link.label, cause="flush", count=flushed)

    def _start_next(self) -> None:
        entry = self.queue.poll()
        if entry is None:
            self._transmitting = False
            return
        frame, size = entry
        self._transmitting = True
        tx_time = size * 8.0 / self.link.rate_bps
        sim = self.link.sim
        sim.schedule(tx_time, self._transmission_done, frame)

    def _transmission_done(self, frame: Any) -> None:
        link = self.link
        peer = self.peer
        bus = link.sim.bus
        if peer is None:
            self._start_next()
            return
        if link.broken:
            self.frames_dropped += 1  # in flight when the cable was cut
            if bus is not None:
                bus.emit("link.drop", link=link.label, cause="severed")
        elif link.impairer is None:
            if bus is not None:
                bus.emit("link.tx", link=link.label, size=frame_wire_size(frame), _frame=frame)
            link.sim.schedule(link.delay, peer.iface.deliver, frame)
            link.frames_carried += 1
        else:
            # The frame made it onto the wire; what the impairment stage does
            # to it in flight (loss/corruption/duplication) is the impairer's
            # own story, published from plan_delivery.
            if bus is not None:
                bus.emit("link.tx", link=link.label, size=frame_wire_size(frame), _frame=frame)
            for extra in link.impairer.plan_delivery():
                link.sim.schedule(link.delay + extra, peer.iface.deliver, frame)
                link.frames_carried += 1
        self._start_next()


class BoundaryHalf:
    """One partition's half of a boundary link (see :mod:`repro.core.partition`).

    When a topology is cut at a link, each side keeps a ``BoundaryHalf``
    where the full build had a :class:`LinkEndpoint`.  The half owns the
    *transmitter* for its direction: it replicates the eager kernel's
    serialization-frontier arithmetic float for float (``start = max(now,
    busy)``; ``done = start + size*8/rate``; ``arrival = done + delay``),
    so a frame crossing a partition boundary is stamped with the exact
    delivery instant the unpartitioned link would have produced.

    Instead of delivering to a peer interface, a shipped frame is appended
    to :attr:`outbound` as ``(arrival, frame)`` at a *local* event at its
    serialization-done instant ``done``; the partition hub collects these
    after each window and routes them to the receiving half, which calls
    :meth:`inject`.  Because the hub's window bound is ``B = M + d`` (global
    event floor plus boundary delay) and every ship satisfies
    ``done >= M``, every ``arrival = done + d >= B`` — injections always
    land in the receiver's future.

    Drop authority is sender-side: the eager drop predicate is evaluated at
    the ship event, against this half's own ``sever()``/``mend()`` record
    (boundary outages are scheduled identically on both builds' schedules).
    This matches the staged engine's transmission-done check except for the
    measure-zero tie of a mend at exactly a frame's ``done`` instant, which
    is documented as unsupported for boundary links (docs/SCALING.md).

    Parameters
    ----------
    sim : Simulation
        The island's simulation this half schedules into.
    channel : str
        Stable identifier for this direction of the boundary link (e.g.
        ``"up:3"``); the hub keys routing and injection order on it.
    rate_bps : float
        Serialization rate of the underlying link.
    delay : float
        Propagation delay of the underlying link — also the sync slack
        this boundary contributes to the lookahead window.
    queue_bytes : int
        Drop-tail capacity of the transmit queue, as on a real endpoint.
    """

    __slots__ = (
        "sim",
        "channel",
        "rate_bps",
        "delay",
        "capacity_bytes",
        "iface",
        "outbound",
        "frames_shipped",
        "frames_injected",
        "frames_dropped",
        "broken",
        "_broken_at",
        "_outages",
        "_busy_until",
        "_pending_frames",
        "_pending_bytes",
        "_inflight",
        "_next_eid",
    )

    def __init__(
        self,
        sim: Simulation,
        channel: str,
        rate_bps: float = 100e6,
        delay: float = 50e-6,
        queue_bytes: int = DEFAULT_TX_QUEUE_BYTES,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay <= 0:
            raise ValueError(
                f"boundary link delay must be positive (it is the sync slack), got {delay}"
            )
        self.sim = sim
        self.channel = channel
        self.rate_bps = rate_bps
        self.delay = delay
        self.capacity_bytes = queue_bytes
        self.iface: Optional[Interface] = None
        #: Frames shipped this window: ``(arrival_instant, frame)`` in ship
        #: (= serialization-done) order.  Drained by the hub between windows.
        self.outbound: list = []
        self.frames_shipped = 0
        self.frames_injected = 0
        self.frames_dropped = 0
        # Outage record, mirroring Link.sever()/mend().
        self.broken = False
        self._broken_at = 0.0
        self._outages: list = []
        # Eager-kernel transmitter state (same fields as LinkEndpoint).
        self._busy_until = 0.0
        self._pending_frames: deque = deque()  # (start_time, size)
        self._pending_bytes = 0
        self._inflight: dict = {}  # eid -> (start, done)
        self._next_eid = 0

    def attach(self, iface: Interface) -> "BoundaryHalf":
        """Plug this half into ``iface`` (the island-side end of the cut link).

        Parameters
        ----------
        iface : Interface
            Interface whose transmissions cross the partition boundary;
            injected frames are delivered to it.

        Returns
        -------
        BoundaryHalf
            ``self``, for chaining.
        """
        if iface.attached:
            raise RuntimeError("interface already attached to another link")
        iface.endpoint = self
        self.iface = iface
        return self

    def transmit(self, frame: Any) -> None:
        """Serialize ``frame`` toward the boundary.

        Runs the eager frontier arithmetic verbatim (tail-drop against the
        pending ledger, ``start = max(now, busy)``, ``done = start +
        size*8/rate``) and schedules the ship event at ``done`` — a local
        event, so a window that ends before ``done`` leaves the frame in
        flight for a later window, exactly like an unpartitioned run.

        Parameters
        ----------
        frame : Any
            Ethernet frame; cloned by the forwarding plane before
            mutation, so pickling it across a pipe later is safe.
        """
        sim = self.sim
        now = sim.now
        size = frame.wire_size()
        if size <= 0:
            raise ValueError(f"frame reports non-positive wire size: {size}")
        pending = self._pending_frames
        while pending and pending[0][0] <= now:
            self._pending_bytes -= pending.popleft()[1]
        if self._pending_bytes + size > self.capacity_bytes:
            self.frames_dropped += 1  # tail drop
            return
        busy = self._busy_until
        start = busy if busy > now else now
        done = start + size * 8.0 / self.rate_bps
        self._busy_until = done
        eid = self._next_eid
        self._next_eid = eid + 1
        if start > now:
            pending.append((start, size))
            self._pending_bytes += size
        self._inflight[eid] = (start, done)
        sim.schedule_at(done, self._ship, frame, eid)

    def _ship(self, frame: Any, eid: int) -> None:
        entry = self._inflight.pop(eid, None)
        if entry is None:
            return  # voided by flush while still queued
        done = entry[1]
        if (self.broken and done >= self._broken_at) or (
            self._outages and self._severed_at(done)
        ):
            # The cable was down at the instant the frame would have left
            # it — the same predicate _eager_deliver applies receiver-side.
            self.frames_dropped += 1
            return
        self.frames_shipped += 1
        self.outbound.append((done + self.delay, frame))

    def inject(self, arrival: float, frame: Any) -> None:
        """Deliver a routed boundary frame to this island at ``arrival``.

        Parameters
        ----------
        arrival : float
            Absolute delivery instant stamped by the sending half
            (``done + delay``).  The sync protocol guarantees
            ``arrival >= now`` — every shipped frame's arrival lies at or
            past the window bound under which it was shipped.
        frame : Any
            The frame as shipped (frames are never mutated after transmit).
        """
        self.frames_injected += 1
        self.sim.schedule_at(arrival, self.iface.deliver, frame)

    def drain_outbound(self) -> list:
        """Return and clear the frames shipped since the last drain.

        Returns
        -------
        list of (float, Any)
            ``(arrival, frame)`` pairs in ship order.
        """
        out = self.outbound
        self.outbound = []
        return out

    def sever(self) -> None:
        """Cut this boundary half (mirror of :meth:`Link.sever` for one side)."""
        if not self.broken:
            self._broken_at = self.sim.now
        self.broken = True
        self.flush()

    def mend(self) -> None:
        """Repair the cable; records the closed outage window."""
        if self.broken:
            self._outages.append((self._broken_at, self.sim.now))
        self.broken = False

    def _severed_at(self, instant: float) -> bool:
        for start, end in self._outages:
            if start <= instant < end:
                return True
        return False

    def flush(self) -> None:
        """Void frames that have not started serializing (counted as drops)."""
        now = self.sim.now
        if not self._inflight:
            return
        new_busy = now
        for eid, (start, done) in list(self._inflight.items()):
            if start > now:
                del self._inflight[eid]
                self.frames_dropped += 1
            elif done > new_busy:
                new_busy = done  # already on the wire; it finishes serializing
        self._busy_until = new_busy
        self._pending_frames.clear()
        self._pending_bytes = 0


class Link:
    """A full-duplex wire between exactly two interfaces."""

    def __init__(
        self,
        sim: Simulation,
        rate_bps: float = 100e6,
        delay: float = 50e-6,
        queue_bytes: int = DEFAULT_TX_QUEUE_BYTES,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay < 0:
            raise ValueError(f"link delay must be non-negative, got {delay}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self._queue_bytes = queue_bytes
        self.endpoint_a: Optional[LinkEndpoint] = None
        self.endpoint_b: Optional[LinkEndpoint] = None
        self.broken = False
        #: Instant of the most recent :meth:`sever`; eager deliveries whose
        #: serialization finished after this drop, like the staged engine's
        #: broken check at transmission-done.
        self._broken_at = 0.0
        #: Closed ``[sever, mend)`` windows.  An eager delivery event fires
        #: ``delay`` after its serialization-done instant, so an outage that
        #: opened *and* closed in between leaves ``broken`` False by the time
        #: the event runs — these windows are how it still sees the cut.
        self._outages: list = []
        self.frames_carried = 0
        self.impairer: Optional[LinkImpairer] = None
        #: Observability label (``"<device>:<role>"`` in the testbed); names
        #: this link in trace events and pcap files.
        self.label: str = "link"

    def attach(self, iface_a: Interface, iface_b: Interface) -> "Link":
        """Plug both ends in."""
        if self.endpoint_a is not None or self.endpoint_b is not None:
            raise RuntimeError("link already attached")
        if iface_a.attached or iface_b.attached:
            raise RuntimeError("interface already attached to another link")
        self.endpoint_a = LinkEndpoint(self, iface_a, self._queue_bytes)
        self.endpoint_b = LinkEndpoint(self, iface_b, self._queue_bytes)
        self.endpoint_a.peer = self.endpoint_b
        self.endpoint_b.peer = self.endpoint_a
        iface_a.endpoint = self.endpoint_a
        iface_b.endpoint = self.endpoint_b
        return self

    def sever(self) -> None:
        """Cut the cable: queued and in-flight frames are lost (and counted).

        Flushing the transmit queues matters: without it, frames queued during
        an outage would burst out on :meth:`mend`, which no unplugged cable
        ever does.
        """
        if not self.broken:
            # Re-severing an already-cut cable must not move the outage
            # start forward (it would wrongly spare frames cut earlier).
            self._broken_at = self.sim.now
        self.broken = True
        for endpoint in (self.endpoint_a, self.endpoint_b):
            if endpoint is not None:
                endpoint.flush()

    def mend(self) -> None:
        if self.broken:
            self._outages.append((self._broken_at, self.sim.now))
        self.broken = False

    def _severed_at(self, instant: float) -> bool:
        """True when ``instant`` fell inside a closed sever..mend window.

        Half-open ``[sever, mend)``: the staged engine's broken check at a
        serialization-done event scheduled for the mend instant itself runs
        after ``mend()`` (scheduled earlier) has cleared ``broken``.
        """
        for start, end in self._outages:
            if start <= instant < end:
                return True
        return False

    def impair(self, config: Impairment, rng: Optional[random.Random] = None) -> "Link":
        """Install an impairment stage on this link's delivery path.

        ``rng`` must be dedicated to this link (see :func:`impair_seed`); it
        defaults to a fresh RNG seeded from the simulation seed, which is only
        appropriate for single-link setups.  Flap windows are scheduled
        relative to *now*.
        """
        if rng is None:
            rng = random.Random(self.sim.seed)
        self.impairer = LinkImpairer(config, rng)
        self.impairer.link = self  # lets the impairer publish trace events
        if config.flap_at is not None:
            self.sim.schedule(config.flap_at, self.sever)
            self.sim.schedule(config.flap_at + config.flap_for, self.mend)
        return self
