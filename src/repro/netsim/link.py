"""Full-duplex point-to-point links.

A :class:`Link` joins two interfaces with independent transmitters per
direction.  Each transmitter serializes frames at the link rate through a
drop-tail queue, then the frame propagates for ``delay`` seconds — the usual
store-and-forward model.  The testbed's "100 Mb/sec Ethernet" links are
``Link(sim, rate_bps=100e6)``.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.netsim.impair import Impairment, LinkImpairer
from repro.netsim.node import Interface
from repro.netsim.queues import DropTailQueue
from repro.netsim.sim import Simulation

#: Default transmit-queue size; generous enough that host-side queues are
#: never the bottleneck (the interesting buffers live inside the gateways).
DEFAULT_TX_QUEUE_BYTES = 4 * 1024 * 1024


def frame_wire_size(frame: Any) -> int:
    """Bytes a frame occupies on the wire (delegates to the frame)."""
    size = frame.wire_size()
    if size <= 0:
        raise ValueError(f"frame reports non-positive wire size: {size}")
    return size


class LinkEndpoint:
    """One direction-of-entry into a link: the transmitter at one end."""

    def __init__(self, link: "Link", iface: Interface, queue_bytes: int):
        self.link = link
        self.iface = iface
        self.peer: Optional["LinkEndpoint"] = None
        self.queue = DropTailQueue(queue_bytes)
        self._transmitting = False
        #: Frames this transmitter lost: tail drops, flushed-on-sever queue
        #: contents, and frames in flight when the cable was cut.
        self.frames_dropped = 0

    def transmit(self, frame: Any) -> None:
        """Queue a frame for serialization onto the wire."""
        if not self.queue.offer(frame, frame_wire_size(frame)):
            self.frames_dropped += 1  # tail drop
            bus = self.link.sim.bus
            if bus is not None:
                bus.emit("link.drop", link=self.link.label, cause="tail_drop")
            return
        if not self._transmitting:
            self._start_next()

    def flush(self) -> None:
        """Discard everything queued for transmission (counted as drops)."""
        flushed = len(self.queue)
        self.frames_dropped += flushed
        self.queue.clear()
        if flushed:
            bus = self.link.sim.bus
            if bus is not None:
                bus.emit("link.drop", link=self.link.label, cause="flush", count=flushed)

    def _start_next(self) -> None:
        entry = self.queue.poll()
        if entry is None:
            self._transmitting = False
            return
        frame, size = entry
        self._transmitting = True
        tx_time = size * 8.0 / self.link.rate_bps
        sim = self.link.sim
        sim.schedule(tx_time, self._transmission_done, frame)

    def _transmission_done(self, frame: Any) -> None:
        link = self.link
        peer = self.peer
        bus = link.sim.bus
        if peer is None:
            self._start_next()
            return
        if link.broken:
            self.frames_dropped += 1  # in flight when the cable was cut
            if bus is not None:
                bus.emit("link.drop", link=link.label, cause="severed")
        elif link.impairer is None:
            if bus is not None:
                bus.emit("link.tx", link=link.label, size=frame_wire_size(frame), _frame=frame)
            link.sim.schedule(link.delay, peer.iface.deliver, frame)
            link.frames_carried += 1
        else:
            # The frame made it onto the wire; what the impairment stage does
            # to it in flight (loss/corruption/duplication) is the impairer's
            # own story, published from plan_delivery.
            if bus is not None:
                bus.emit("link.tx", link=link.label, size=frame_wire_size(frame), _frame=frame)
            for extra in link.impairer.plan_delivery():
                link.sim.schedule(link.delay + extra, peer.iface.deliver, frame)
                link.frames_carried += 1
        self._start_next()


class Link:
    """A full-duplex wire between exactly two interfaces."""

    def __init__(
        self,
        sim: Simulation,
        rate_bps: float = 100e6,
        delay: float = 50e-6,
        queue_bytes: int = DEFAULT_TX_QUEUE_BYTES,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if delay < 0:
            raise ValueError(f"link delay must be non-negative, got {delay}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self._queue_bytes = queue_bytes
        self.endpoint_a: Optional[LinkEndpoint] = None
        self.endpoint_b: Optional[LinkEndpoint] = None
        self.broken = False
        self.frames_carried = 0
        self.impairer: Optional[LinkImpairer] = None
        #: Observability label (``"<device>:<role>"`` in the testbed); names
        #: this link in trace events and pcap files.
        self.label: str = "link"

    def attach(self, iface_a: Interface, iface_b: Interface) -> "Link":
        """Plug both ends in."""
        if self.endpoint_a is not None or self.endpoint_b is not None:
            raise RuntimeError("link already attached")
        if iface_a.attached or iface_b.attached:
            raise RuntimeError("interface already attached to another link")
        self.endpoint_a = LinkEndpoint(self, iface_a, self._queue_bytes)
        self.endpoint_b = LinkEndpoint(self, iface_b, self._queue_bytes)
        self.endpoint_a.peer = self.endpoint_b
        self.endpoint_b.peer = self.endpoint_a
        iface_a.endpoint = self.endpoint_a
        iface_b.endpoint = self.endpoint_b
        return self

    def sever(self) -> None:
        """Cut the cable: queued and in-flight frames are lost (and counted).

        Flushing the transmit queues matters: without it, frames queued during
        an outage would burst out on :meth:`mend`, which no unplugged cable
        ever does.
        """
        self.broken = True
        for endpoint in (self.endpoint_a, self.endpoint_b):
            if endpoint is not None:
                endpoint.flush()

    def mend(self) -> None:
        self.broken = False

    def impair(self, config: Impairment, rng: Optional[random.Random] = None) -> "Link":
        """Install an impairment stage on this link's delivery path.

        ``rng`` must be dedicated to this link (see :func:`impair_seed`); it
        defaults to a fresh RNG seeded from the simulation seed, which is only
        appropriate for single-link setups.  Flap windows are scheduled
        relative to *now*.
        """
        if rng is None:
            rng = random.Random(self.sim.seed)
        self.impairer = LinkImpairer(config, rng)
        self.impairer.link = self  # lets the impairer publish trace events
        if config.flap_at is not None:
            self.sim.schedule(config.flap_at, self.sever)
            self.sim.schedule(config.flap_at + config.flap_for, self.mend)
        return self
