"""Packet queues and rate limiters.

Two building blocks live here:

* :class:`DropTailQueue` — a FIFO bounded in bytes, the queue discipline of
  every link transmitter and of the home-gateway forwarding engine.  The
  over-dimensioned transmit buffers the paper measures in test TCP-3 are
  simply ``DropTailQueue`` instances with large ``capacity_bytes``.
* :class:`TokenBucket` — a classic token-bucket rate limiter used by gateway
  profiles that shape traffic below line rate.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Optional, Tuple


class DropTailQueue:
    """A byte-bounded FIFO that drops arrivals when full (tail drop)."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._items: Deque[Tuple[Any, int]] = deque()
        self._occupied = 0
        self.enqueued = 0
        self.dropped = 0

    def offer(self, item: Any, size_bytes: int) -> bool:
        """Enqueue ``item``; returns False (and counts a drop) when full."""
        if size_bytes <= 0:
            raise ValueError(f"item size must be positive, got {size_bytes}")
        if self._occupied + size_bytes > self.capacity_bytes:
            self.dropped += 1
            return False
        self._items.append((item, size_bytes))
        self._occupied += size_bytes
        self.enqueued += 1
        return True

    def poll(self) -> Optional[Tuple[Any, int]]:
        """Dequeue the head ``(item, size_bytes)``, or None when empty."""
        if not self._items:
            return None
        item, size = self._items.popleft()
        self._occupied -= size
        return item, size

    def peek_size(self) -> Optional[int]:
        """Size in bytes of the head item, or None when empty."""
        if not self._items:
            return None
        return self._items[0][1]

    @property
    def occupied_bytes(self) -> int:
        return self._occupied

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def clear(self) -> None:
        self._items.clear()
        self._occupied = 0


class TokenBucket:
    """Token-bucket rate limiter over virtual time.

    Tokens are bytes.  ``rate_bps`` is the fill rate in *bits* per second to
    match how link speeds are quoted everywhere else in the reproduction.
    """

    def __init__(self, rate_bps: float, burst_bytes: int):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {burst_bytes}")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_fill = 0.0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_fill
        if elapsed < 0:
            raise ValueError("time went backwards in TokenBucket")
        self._tokens = min(self.burst_bytes, self._tokens + elapsed * self.rate_bps / 8.0)
        self._last_fill = now

    #: Slack absorbing float rounding: a bucket that is within a fraction of
    #: a byte of full-enough counts as ready, otherwise a scheduler waiting
    #: ``delay_until_available`` seconds could wake up a hair short of its
    #: tokens and respin forever at the same virtual instant.
    EPSILON_BYTES = 1e-6

    def can_consume(self, now: float, size_bytes: int) -> bool:
        elapsed = now - self._last_fill  # _refill inlined: per-packet hot path
        if elapsed < 0:
            raise ValueError("time went backwards in TokenBucket")
        tokens = min(self.burst_bytes, self._tokens + elapsed * self.rate_bps / 8.0)
        self._tokens = tokens
        self._last_fill = now
        return tokens + self.EPSILON_BYTES >= size_bytes

    def try_consume(self, now: float, size_bytes: int) -> bool:
        """Consume ``size_bytes`` tokens if available right now."""
        if not self.can_consume(now, size_bytes):
            return False
        self._tokens = max(self._tokens - size_bytes, 0.0)
        return True

    def consume_unchecked(self, size_bytes: int) -> None:
        """Subtract tokens already verified available by a :meth:`can_consume`
        at the same instant (skips the redundant second refill)."""
        self._tokens = max(self._tokens - size_bytes, 0.0)

    def delay_until_available(self, now: float, size_bytes: int) -> float:
        """Seconds until ``size_bytes`` tokens will have accumulated (0 if ready)."""
        self._refill(now)
        deficit = size_bytes - self._tokens
        if deficit <= self.EPSILON_BYTES:
            return 0.0
        delay = deficit * 8.0 / self.rate_bps
        # A delay below the clock's float resolution at ``now`` would
        # schedule a wake-up at the *same* timestamp: no time elapses, no
        # tokens accrue, and the scheduler spins at one virtual instant
        # forever.  Round up to the smallest step the clock can represent.
        return max(delay, math.nextafter(now, math.inf) - now)

    @property
    def tokens(self) -> float:
        return self._tokens
