"""Link-layer addressing helpers.

IP addresses throughout the reproduction use :class:`ipaddress.IPv4Address`
from the standard library; this module provides the Ethernet side: a small
immutable MAC address type and a deterministic allocator, plus the broadcast
constant used by DHCP and ARP-free delivery.
"""

from __future__ import annotations

import itertools
from typing import Iterator


class MacAddress:
    """An immutable 48-bit Ethernet MAC address.

    Stored as an int for cheap hashing/comparison; prints in the familiar
    colon-separated form.
    """

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not 0 <= value < (1 << 48):
            raise ValueError(f"MAC address out of range: {value:#x}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (case-insensitive)."""
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address: {text!r}")
        value = 0
        for part in parts:
            octet = int(part, 16)
            if not 0 <= octet <= 0xFF:
                raise ValueError(f"malformed MAC address: {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFFFFFF

    @property
    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 0x01)

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(6, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddress":
        if len(data) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self._value == other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __lt__(self, other: "MacAddress") -> bool:
        return self._value < other._value

    def __str__(self) -> str:
        raw = self._value.to_bytes(6, "big")
        return ":".join(f"{octet:02x}" for octet in raw)

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"


BROADCAST_MAC = MacAddress(0xFFFFFFFFFFFF)


def mac_allocator(oui: int = 0x02_00_00) -> Iterator[MacAddress]:
    """Yield distinct locally-administered MAC addresses.

    The default OUI has the locally-administered bit set, so generated
    addresses can never collide with real hardware.
    """
    if not 0 <= oui < (1 << 24):
        raise ValueError(f"OUI out of range: {oui:#x}")
    for serial in itertools.count(1):
        if serial >= (1 << 24):
            raise RuntimeError("MAC allocator exhausted")
        yield MacAddress((oui << 24) | serial)
