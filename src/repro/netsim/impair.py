"""Deterministic link impairments: loss, duplication, reordering, corruption, flaps.

Real home-gateway testbeds fight flaky cabling and misbehaving devices; this
module brings that hostility into the simulator *reproducibly*.  An
:class:`Impairment` is a pure-value description of what a link should suffer.
Installing it on a :class:`~repro.netsim.link.Link` (see ``Link.impair``)
creates a :class:`LinkImpairer`: the per-link stage on the delivery path that
draws every stochastic decision from its own seeded RNG.

Determinism contract:

* every link gets a *dedicated* ``random.Random`` seeded from the owning
  simulation's seed and the link's construction ordinal
  (:func:`impair_seed`), never from the shared ``sim.rng`` — so impairments
  cannot perturb other stochastic consumers (e.g. RANDOM port allocation),
  and the draw sequence depends only on the frames the link itself carries;
* in the sharded survey, the simulation seed is the tag-derived shard seed,
  so an impaired device measures identically under ``jobs=1``, ``jobs=N``,
  and in any device subset.

Effect semantics:

* ``loss`` — the frame vanishes in flight (per-frame probability);
* ``corrupt`` — bits flip in flight and the receiver's FCS check discards
  the frame, so corruption is a *counted-separately* drop (the stack never
  sees a mangled frame, exactly like real Ethernet);
* ``dup`` — the frame is delivered twice;
* ``reorder`` — every frame draws an extra uniform propagation jitter in
  ``[0, reorder)`` seconds, so a later frame can overtake an earlier one;
* ``flap`` — a scheduled outage window: the link severs at ``flap_at``
  (flushing both transmit queues) and mends ``flap_for`` seconds later.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Impairment", "LinkImpairer", "impair_seed"]


def impair_seed(sim_seed: int, link_ordinal: int) -> int:
    """Per-link RNG seed, stable across processes and device subsets."""
    salt = zlib.crc32(f"impair:{link_ordinal}".encode("utf-8"))
    return (sim_seed * 0x9E3779B1 + salt) & 0xFFFFFFFF


def _parse_probability(key: str, text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"impairment {key}={text!r} is not a number") from None
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"impairment {key}={value} must be a probability in [0, 1]")
    return value


def _parse_seconds(key: str, text: str) -> float:
    """Parse a duration with an optional ``ms``/``s`` suffix (default seconds)."""
    raw = text.strip()
    scale = 1.0
    if raw.endswith("ms"):
        raw, scale = raw[:-2], 1e-3
    elif raw.endswith("s"):
        raw = raw[:-1]
    try:
        value = float(raw) * scale
    except ValueError:
        raise ValueError(f"impairment {key}={text!r} is not a duration") from None
    if value < 0:
        raise ValueError(f"impairment {key}={text!r} must be non-negative")
    return value


@dataclass(frozen=True)
class Impairment:
    """A composable, picklable description of one link's misbehaviour.

    Parse one from the CLI syntax with :meth:`parse`
    (``loss=0.01,reorder=5ms,dup=0.001,flap=30:2``) or construct directly;
    install it with :meth:`~repro.netsim.link.Link.impair` (a dedicated
    per-link RNG) or campaign-wide with
    :meth:`~repro.testbed.testbed.Testbed.apply_impairment`.  Under a
    trace (see :mod:`repro.obs`) each decision surfaces as a ``link.drop``
    (cause ``loss``/``corrupt``) or ``link.dup`` event, emitted strictly
    after the RNG draw so observation never perturbs the outcome.
    """

    #: Per-frame probability the frame is lost in flight.
    loss: float = 0.0
    #: Per-frame probability the frame is delivered twice.
    dup: float = 0.0
    #: Per-frame probability of bit corruption (dropped by the receiver FCS).
    corrupt: float = 0.0
    #: Extra uniform propagation jitter in seconds; > serialization gaps
    #: produces actual reordering.
    reorder: float = 0.0
    #: Scheduled outage: sever at this many seconds after installation...
    flap_at: Optional[float] = None
    #: ...and mend this many seconds after the sever.
    flap_for: float = 0.0

    def __post_init__(self) -> None:
        for key in ("loss", "dup", "corrupt"):
            value = getattr(self, key)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"impairment {key}={value} must be a probability in [0, 1]")
        if self.reorder < 0:
            raise ValueError(f"impairment reorder={self.reorder} must be non-negative")
        if self.flap_at is not None and self.flap_at < 0:
            raise ValueError(f"impairment flap_at={self.flap_at} must be non-negative")
        if self.flap_for < 0:
            raise ValueError(f"impairment flap_for={self.flap_for} must be non-negative")

    @property
    def is_null(self) -> bool:
        """True when installing this impairment would change nothing."""
        return (
            self.loss == 0.0
            and self.dup == 0.0
            and self.corrupt == 0.0
            and self.reorder == 0.0
            and self.flap_at is None
        )

    @classmethod
    def parse(cls, text: str) -> "Impairment":
        """Parse the CLI syntax: ``loss=0.01,reorder=5ms,dup=0.001,flap=30:2``.

        ``flap=START:DURATION`` takes two durations (same ms/s suffixes).
        """
        fields: Dict[str, object] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"impairment item {item!r} is not key=value")
            key, _, value = item.partition("=")
            key = key.strip()
            if key in ("loss", "dup", "corrupt"):
                fields[key] = _parse_probability(key, value)
            elif key == "reorder":
                fields[key] = _parse_seconds(key, value)
            elif key == "flap":
                start, sep, duration = value.partition(":")
                if not sep:
                    raise ValueError(f"impairment flap={value!r} must be START:DURATION")
                fields["flap_at"] = _parse_seconds("flap", start)
                fields["flap_for"] = _parse_seconds("flap", duration)
            else:
                raise ValueError(f"unknown impairment key {key!r}")
        return cls(**fields)  # type: ignore[arg-type]

    def describe(self) -> Dict[str, object]:
        """Machine-readable form for the bench JSON."""
        return {
            "loss": self.loss,
            "dup": self.dup,
            "corrupt": self.corrupt,
            "reorder_seconds": self.reorder,
            "flap_at_seconds": self.flap_at,
            "flap_for_seconds": self.flap_for,
        }


class LinkImpairer:
    """The per-link delivery stage: one seeded RNG plus effect counters."""

    __slots__ = (
        "config",
        "rng",
        "link",
        "frames_lost",
        "frames_corrupted",
        "frames_duplicated",
        "frames_jittered",
    )

    def __init__(self, config: Impairment, rng: random.Random):
        self.config = config
        self.rng = rng
        #: Owning link, set by :meth:`Link.impair`; lets impairment decisions
        #: surface as ``link.drop``/``link.dup`` trace events.  ``None`` for
        #: an impairer constructed standalone (e.g. in unit tests).
        self.link = None
        self.frames_lost = 0
        self.frames_corrupted = 0
        self.frames_duplicated = 0
        self.frames_jittered = 0

    def _jitter(self) -> float:
        if self.config.reorder <= 0:
            return 0.0
        jitter = self.rng.uniform(0.0, self.config.reorder)
        if jitter > 0:
            self.frames_jittered += 1
        return jitter

    def plan_delivery(self) -> List[float]:
        """Extra propagation delays for one frame; empty list means dropped.

        Trace emission here is strictly after the RNG draws, so observing an
        impaired link never perturbs its stochastic decisions.
        """
        config = self.config
        rng = self.rng
        bus = self.link.sim.bus if self.link is not None else None
        if config.loss and rng.random() < config.loss:
            self.frames_lost += 1
            if bus is not None:
                bus.emit("link.drop", link=self.link.label, cause="loss")
            return []
        if config.corrupt and rng.random() < config.corrupt:
            self.frames_corrupted += 1
            if bus is not None:
                bus.emit("link.drop", link=self.link.label, cause="corrupt")
            return []
        delays = [self._jitter()]
        if config.dup and rng.random() < config.dup:
            self.frames_duplicated += 1
            if bus is not None:
                bus.emit("link.dup", link=self.link.label)
            delays.append(self._jitter())
        return delays
