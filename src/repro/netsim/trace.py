"""Packet capture.

The paper determines several behaviours "by inspecting packet traces" (the
ICMP translation tests in §3.2.3 hijack packets and look at what the NAT
emitted).  :class:`PacketTrace` is the tcpdump of this reproduction: wrap an
interface and every frame it sends or receives is recorded with a timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.netsim.node import Interface


@dataclass(frozen=True)
class TraceEntry:
    """One captured frame."""

    timestamp: float
    direction: str  # "tx" or "rx"
    frame: Any

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.direction} @ {self.timestamp:.6f}s {self.frame!r}>"


class PacketTrace:
    """Record all frames crossing an interface.

    Installs transparently by wrapping the interface's ``transmit`` and
    ``deliver`` methods; :meth:`detach` restores them.
    """

    def __init__(self, iface: Interface, clock: Callable[[], float]):
        self.iface = iface
        self._clock = clock
        self.entries: List[TraceEntry] = []
        self._orig_transmit = iface.transmit
        self._orig_deliver = iface.deliver
        iface.transmit = self._traced_transmit  # type: ignore[method-assign]
        iface.deliver = self._traced_deliver  # type: ignore[method-assign]
        self._attached = True

    @classmethod
    def on(cls, iface: Interface) -> "PacketTrace":
        """Attach a trace using the interface's own simulation clock."""
        sim = iface.node.sim
        return cls(iface, lambda: sim.now)

    def _traced_transmit(self, frame: Any) -> None:
        self.entries.append(TraceEntry(self._clock(), "tx", frame))
        self._orig_transmit(frame)

    def _traced_deliver(self, frame: Any) -> None:
        self.entries.append(TraceEntry(self._clock(), "rx", frame))
        self._orig_deliver(frame)

    def detach(self) -> None:
        if not self._attached:
            return
        self.iface.transmit = self._orig_transmit  # type: ignore[method-assign]
        self.iface.deliver = self._orig_deliver  # type: ignore[method-assign]
        self._attached = False

    def clear(self) -> None:
        self.entries.clear()

    def select(
        self,
        direction: Optional[str] = None,
        predicate: Optional[Callable[[Any], bool]] = None,
    ) -> List[TraceEntry]:
        """Filter captured entries by direction and/or a frame predicate."""
        out = []
        for entry in self.entries:
            if direction is not None and entry.direction != direction:
                continue
            if predicate is not None and not predicate(entry.frame):
                continue
            out.append(entry)
        return out

    def __len__(self) -> int:
        return len(self.entries)
