"""Discrete-event packet-level network simulator.

This package is the substrate on which the reproduction runs: it provides a
virtual clock with an event scheduler, network nodes with Ethernet
interfaces, full-duplex links with finite transmission rate and propagation
delay, drop-tail queues, and VLAN-aware learning switches.

The simulator deals in *structured* packets (see :mod:`repro.packets`) rather
than raw bytes on the hot path; every layer knows its wire size so that
transmission times and queue occupancy are byte-accurate, and every layer can
be serialized to real wire bytes when a test needs to inspect them.

Typical use::

    sim = Simulation()
    a, b = Host(sim, "a"), Host(sim, "b")   # from repro.protocols
    link = Link(sim, rate_bps=100_000_000, delay=50e-6)
    link.attach(a.iface(0), b.iface(0))
    sim.run()
"""

from repro.netsim.sim import Simulation, Timer, WatchdogExpired
from repro.netsim.addresses import MacAddress, mac_allocator
from repro.netsim.impair import Impairment, LinkImpairer, impair_seed
from repro.netsim.link import Link
from repro.netsim.node import Interface, Node
from repro.netsim.queues import DropTailQueue, TokenBucket
from repro.netsim.switch import VlanSwitch
from repro.netsim.trace import PacketTrace, TraceEntry

__all__ = [
    "Simulation",
    "Timer",
    "WatchdogExpired",
    "Impairment",
    "LinkImpairer",
    "impair_seed",
    "MacAddress",
    "mac_allocator",
    "Link",
    "Interface",
    "Node",
    "DropTailQueue",
    "TokenBucket",
    "VlanSwitch",
    "PacketTrace",
    "TraceEntry",
]
