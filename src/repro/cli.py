"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-devices`` — the Table 1 inventory.
* ``probe`` — run one measurement family against selected devices.
* ``survey`` — run several families, optionally exporting CSV series.
* ``classify`` — STUN-style classification of selected devices.
* ``compliance`` — grade devices against RFC 4787 / 5382 / 5508.
* ``bench`` — run a campaign, print and dump its performance counters
  (``BENCH_survey.json``); ``--jobs N`` shards devices across processes.
* ``trace`` — summarize JSONL trace files produced by ``--trace``.

``probe``, ``survey``, ``report`` and ``bench`` all accept the flight-recorder
flags ``--trace DIR`` (per-device JSONL event traces), ``--pcap DIR``
(per-link pcap captures) and ``--metrics`` (campaign counters/histograms);
see :mod:`repro.obs`.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.analysis import render_series, render_table1, series_to_csv
from repro.analysis.figures import timeout_series
from repro.compliance import check_device, population_summary
from repro.core import (
    BindingRateProbe,
    DnsProxyTest,
    IcmpTranslationTest,
    OptionsTest,
    TcpBindingCapacityProbe,
    TcpTimeoutProbe,
    ThroughputProbe,
    TransportSupportTest,
    UdpTimeoutProbe,
    registry,
)
from repro.core.results import DeviceSeries, Summary
from repro.devices import CATALOG, catalog_profiles
from repro.obs import ObsConfig, ShardObserver, render_summary, summarize_paths
from repro.testbed import Testbed

#: Campaign families, straight from the experiment registry — a family
#: registered by a core module is a valid ``--tests``/``--families`` value
#: everywhere without touching this file.
FAMILY_CHOICES = registry.runnable_names()

#: The single-probe menu: every registry family the probe renderer handles,
#: plus the diagnostic probes that are not campaign families.  Opt-in
#: families (``default_selected=False``, e.g. the NAT444 pair) run their own
#: topology through the campaign path and are excluded here.
PROBE_CHOICES = tuple(
    name for name in FAMILY_CHOICES
    if name != "udp5" and registry.get(name).default_selected
) + (
    "options", "binding-rate", "pmtu",
)

#: The families ``--cgn`` adds to (or selects for) a campaign.
CGN_FAMILIES = ("cgn_timeouts", "cgn_exhaustion")

#: The families ``--attack`` adds to (or selects for) a campaign.
ATTACK_FAMILIES = ("attack_portflood", "attack_keepalive", "attack_rst")

#: The families ``--metro`` adds to (or selects for) a campaign — the
#: partitionable metro-scale tier (also the ``--partitions`` default menu).
METRO_FAMILIES = ("metro_load",)

#: The families ``--matrix`` adds to (or selects for) a campaign — the
#: pairwise NAT-traversal tier (subject kind ``pair``).
MATRIX_FAMILIES = ("traversal_matrix",)

#: The families ``--workload`` adds to (or selects for) a campaign — the
#: subscriber application-mix tier (offered-load ramp + firewall cost).
WORKLOAD_FAMILIES = ("workload_mix", "fwcost_scaling")

#: Per-command fallbacks when neither ``--tests`` nor ``--families`` nor
#: ``--cgn`` picked anything.  Kept out of argparse defaults so the commands
#: can tell "user chose these" from "nothing chosen".
DEFAULT_SURVEY_TESTS = ["udp1", "tcp1", "tcp4"]
DEFAULT_REPORT_TESTS = ["udp1", "udp2", "udp3", "tcp1", "tcp4"]
DEFAULT_BENCH_TESTS = ["udp1", "tcp2"]


def _resolve_tags(tags: Optional[Sequence[str]]) -> List[str]:
    if not tags:
        return sorted(CATALOG)
    unknown = [tag for tag in tags if tag not in CATALOG]
    if unknown:
        raise SystemExit(f"unknown device tags: {unknown}; see `repro list-devices`")
    return list(tags)


def _build_bed(tags: Sequence[str], seed: int, fastpath: bool = True) -> Testbed:
    return Testbed.build(catalog_profiles(tags), seed=seed, fastpath=fastpath)


def _parse_chaos(args):
    """Parse ``--impair``/``--fault`` flags into campaign chaos config."""
    from repro.gateway.faults import FaultSpec
    from repro.netsim.impair import Impairment

    try:
        impairment = Impairment.parse(args.impair) if args.impair else None
        faults = [FaultSpec.parse(text) for text in (args.fault or [])]
    except ValueError as exc:
        raise SystemExit(f"bad chaos spec: {exc}") from None
    return impairment, faults


def _obs_config(args) -> ObsConfig:
    """Build the flight-recorder config from ``--trace/--pcap/--metrics``."""
    return ObsConfig(
        trace_dir=getattr(args, "trace", None),
        pcap_dir=getattr(args, "pcap", None),
        metrics=bool(getattr(args, "metrics", False)),
    )


def _emit_metrics(observer: Optional[ShardObserver], out) -> None:
    """Print the collected metrics registry as JSON (probe/survey)."""
    if observer is not None and observer.registry is not None:
        out(json.dumps(observer.registry.as_dict(), indent=2, sort_keys=True))


def _report_errors(results, out) -> None:
    if results.errors:
        out(f"\n{len(results.errors)} shard(s) failed:")
        for error in results.errors:
            out(f"  {error}")


def _family_selection(args) -> Optional[List[str]]:
    """Resolve ``--families udp1,tcp2`` (preferred) or legacy ``--tests``."""
    families = getattr(args, "families", None)
    if families:
        return [name.strip() for name in families.split(",") if name.strip()]
    tests = getattr(args, "tests", None)
    return list(tests) if tests else None


def _cgn_selection(args, base: Optional[List[str]], default: List[str]) -> List[str]:
    """Fold ``--cgn``/``--attack``/``--metro`` into a family selection.

    With an explicit ``--tests``/``--families`` selection the opt-in
    families are appended; with none, ``--cgn``/``--attack``/``--metro``
    alone means "that campaign" (just those families, not them plus the
    command's default menu).  With no flag at all the command's own
    ``default`` fills in.
    """
    extra: List[str] = []
    if getattr(args, "cgn", False):
        extra.extend(CGN_FAMILIES)
    if getattr(args, "attack", False):
        extra.extend(ATTACK_FAMILIES)
    if getattr(args, "metro", False):
        extra.extend(METRO_FAMILIES)
    if getattr(args, "matrix", False):
        extra.extend(MATRIX_FAMILIES)
    if getattr(args, "workload", False):
        extra.extend(WORKLOAD_FAMILIES)
    if not extra:
        return base if base is not None else list(default)
    if base is None:
        return extra
    return base + [name for name in extra if name not in base]


def _run_probe(
    name: str,
    tags: Sequence[str],
    repetitions: int,
    seed: int,
    out,
    observer: Optional[ShardObserver] = None,
    fastpath: bool = True,
) -> Optional[DeviceSeries]:
    bed = _build_bed(tags, seed, fastpath=fastpath)
    if observer is None:
        return _dispatch_probe(name, bed, repetitions, out)
    # Flight recorder on: trace the family like a survey shard would.
    observer.begin(bed, name)
    try:
        return _dispatch_probe(name, bed, repetitions, out)
    finally:
        observer.finish(bed, name)


def _dispatch_probe(name: str, bed: Testbed, repetitions: int, out) -> Optional[DeviceSeries]:
    if name in ("udp1", "udp2", "udp3"):
        maker = getattr(UdpTimeoutProbe, name)
        results = maker(repetitions=repetitions).run_all(bed)
        series = timeout_series(results, name)
        out(render_series(series, f"{name.upper()} binding timeouts [s]"))
        return series
    if name == "tcp1":
        probe = TcpTimeoutProbe()
        results = probe.run_all(bed)
        series = probe.series(results)
        out(render_series(series, "TCP-1 binding timeouts [s]", log_scale=True, censored_label=">24h"))
        return series
    if name == "tcp2":
        results = ThroughputProbe().run_all(bed)
        probe = ThroughputProbe()
        series = probe.throughput_series(results, "download")
        out(render_series(series, "TCP-2 download throughput [Mb/s]"))
        delay = probe.delay_series(results, "download")
        out(render_series(delay, "TCP-3 download queuing delay [ms]"))
        return series
    if name == "tcp4":
        probe = TcpBindingCapacityProbe()
        results = probe.run_all(bed)
        series = probe.series(results)
        out(render_series(series, "TCP-4 max bindings", log_scale=True))
        return series
    if name == "icmp":
        results = IcmpTranslationTest().run_all(bed)
        for tag in sorted(results):
            result = results[tag]
            out(
                f"{tag:>5}  udp:{len(result.forwarded_kinds('udp')):>2}/10  "
                f"tcp:{len(result.forwarded_kinds('tcp')):>2}/10  "
                f"embedded-rewrite:{result.translates_embedded_transport()}  "
                f"ip-cksum:{result.fixes_embedded_ip_checksum()}"
            )
        return None
    if name == "transports":
        results = TransportSupportTest().run_all(bed)
        for tag in sorted(results):
            sctp = results[tag]["sctp"]
            dccp = results[tag]["dccp"]
            out(f"{tag:>5}  sctp:{'pass' if sctp.supported else 'fail':<4} ({sctp.wire_view})  "
                f"dccp:{'pass' if dccp.supported else 'fail'}")
        return None
    if name == "dns":
        results = DnsProxyTest().run_all(bed)
        for tag in sorted(results):
            result = results[tag]
            out(f"{tag:>5}  udp:{result.answers_udp}  accepts-tcp:{result.accepts_tcp}  "
                f"answers-tcp:{result.answers_tcp}  upstream:{result.upstream_transport_for_tcp}")
        return None
    if name == "options":
        results = OptionsTest().run_all(bed)
        for tag in sorted(results):
            result = results[tag]
            out(f"{tag:>5}  ip-options:{result.ip_options_pass}  "
                f"record-route:{result.record_route_recorded}  "
                f"tcp-options:{result.tcp_options_preserved}")
        return None
    if name == "binding-rate":
        probe = BindingRateProbe()
        results = probe.run_all(bed)
        series = probe.series(results)
        out(render_series(series, "Binding setup rate [bindings/s]"))
        return series
    if name == "pmtu":
        from repro.core import PmtuBlackholeTest

        results = PmtuBlackholeTest().run_all(bed)
        for tag in sorted(results):
            result = results[tag]
            verdict = f"ok in {result.duration:.2f}s (mss {result.mss_after})" if result.completed else "BLACK HOLE"
            out(f"{tag:>5}  {verdict}")
        return None
    raise SystemExit(f"unknown probe {name!r}")


def cmd_list_devices(args, out) -> int:
    out(render_table1(catalog_profiles()))
    return 0


def cmd_probe(args, out) -> int:
    tags = _resolve_tags(args.tags)
    obs = _obs_config(args)
    observer = ShardObserver(obs) if obs.enabled else None
    try:
        _run_probe(args.test, tags, args.repetitions, args.seed, out, observer=observer,
                   fastpath=not args.no_fastpath)
    finally:
        if observer is not None:
            observer.close()
    _emit_metrics(observer, out)
    return 0


def cmd_survey(args, out) -> int:
    tags = _resolve_tags(args.tags)
    if args.partitions is not None:
        return _run_campaign_partitioned(args, tags, out)
    if (args.families or args.cgn or args.attack or args.metro or args.matrix
            or args.workload or args.out or args.resume or args.jobs > 1):
        return _run_campaign_survey(args, tags, out)
    csv_dir = pathlib.Path(args.csv_dir) if args.csv_dir else None
    if csv_dir:
        csv_dir.mkdir(parents=True, exist_ok=True)
    obs = _obs_config(args)
    observer = ShardObserver(obs) if obs.enabled else None
    try:
        for name in args.tests or DEFAULT_SURVEY_TESTS:
            out(f"\n=== {name} ===")
            series = _run_probe(name, tags, args.repetitions, args.seed, out, observer=observer,
                                fastpath=not args.no_fastpath)
            if series is not None and csv_dir:
                (csv_dir / f"{name}.csv").write_text(series_to_csv(series) + "\n")
                out(f"[wrote {csv_dir / f'{name}.csv'}]")
    finally:
        if observer is not None:
            observer.close()
    _emit_metrics(observer, out)
    return 0


def _run_campaign_survey(args, tags: Sequence[str], out) -> int:
    """The durable campaign path: SurveyRunner + optional store/resume."""
    from repro.core import SurveyRunner
    from repro.core.store import StoreError

    if args.resume and not args.out:
        raise SystemExit("--resume needs --out DIR (the store to resume from)")
    runner = SurveyRunner(
        profiles=catalog_profiles(tags),
        seed=args.seed,
        udp_repetitions=args.repetitions,
        cgn_subscribers=args.subscribers,
        cgn_block_size=args.block_size,
        attack_rate=args.attack_rate,
        attack_duration=args.attack_duration,
        metro_requests=args.metro_requests,
        metro_idle=args.metro_idle,
        metro_flap=args.metro_flap,
        matrix_pairs=args.matrix_pairs,
        matrix_cgn=args.matrix_cgn,
        workload_mix=args.workload_mix,
        workload_ramp=args.load_ramp,
        fw_rules=args.fw_rules,
        jobs=args.jobs,
        fastpath=not args.no_fastpath,
        trace_dir=args.trace,
        pcap_dir=args.pcap,
        metrics=args.metrics,
        store_dir=args.out,
        resume=args.resume,
    )
    try:
        results = runner.run(
            tests=_cgn_selection(args, _family_selection(args), DEFAULT_SURVEY_TESTS)
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    except StoreError as exc:
        raise SystemExit(str(exc)) from None
    for name, mapping in results.families.items():
        descriptor = registry.get(name)
        cells = descriptor.cells_of(mapping) if descriptor is not None else mapping
        unit = descriptor.subject_kind if descriptor is not None else "device"
        out(f"{name:>10}: {len(cells)} {unit}(s)")
    if args.out:
        skipped = f" ({runner.last_skipped_cells} cell(s) reused)" if args.resume else ""
        out(f"store: {args.out}{skipped}")
    _report_errors(results, out)
    return 0 if results.complete else 1


def _partition_runner(args, tags: Sequence[str]):
    """Build the PartitionRunner shared by ``survey``/``bench --partitions``."""
    from repro.core.partition import PartitionRunner

    return PartitionRunner(
        profiles=catalog_profiles(tags),
        seed=args.seed,
        partitions=args.partitions,
        cgn_subscribers=args.subscribers,
        cgn_block_size=args.block_size,
        metro_requests=args.metro_requests,
        metro_idle=args.metro_idle,
        metro_flap=args.metro_flap,
        fastpath=not args.no_fastpath,
        store_dir=getattr(args, "out", None),
        resume=getattr(args, "resume", False),
    )


def _run_campaign_partitioned(args, tags: Sequence[str], out) -> int:
    """The ``--partitions N`` path: one topology cut across worker processes."""
    from repro.core.partition import PartitionError
    from repro.core.store import StoreError

    if args.resume and not args.out:
        raise SystemExit("--resume needs --out DIR (the store to resume from)")
    runner = _partition_runner(args, tags)
    selection = _cgn_selection(args, _family_selection(args), list(METRO_FAMILIES))
    try:
        results = runner.run(tests=selection)
    except (PartitionError, StoreError) as exc:
        raise SystemExit(str(exc)) from None
    for name, mapping in results.families.items():
        descriptor = registry.get(name)
        cells = descriptor.cells_of(mapping) if descriptor is not None else mapping
        out(f"{name:>10}: {len(cells)} segment(s)")
    out(f"partitions: {runner.partitions}   sync rounds: {runner.last_sync_rounds}   "
        f"boundary frames: {runner.last_boundary_frames}")
    if args.out:
        skipped = f" ({runner.last_skipped_cells} cell(s) reused)" if args.resume else ""
        out(f"store: {args.out}{skipped}")
    return 0


def cmd_classify(args, out) -> int:
    from repro.core.runtime import SimTask, run_tasks
    from repro.traversal import StunClient, StunServer, classify

    tags = _resolve_tags(args.tags)
    bed = _build_bed(tags, args.seed)
    server = StunServer(bed.server)
    for tag in tags:
        port = bed.port(tag)
        client = StunClient(bed.client, iface_index=port.client_iface_index)
        task = SimTask(bed.sim, classify(client, port.server_ip), name=f"stun:{tag}")
        run_tasks(bed.sim, [task])
        client.close()
        verdict = task.result
        out(f"{tag:>5}  {verdict.rfc3489_type:<22} port-preserved:{verdict.preserves_port}")
    server.close()
    return 0


def cmd_report(args, out) -> int:
    from repro.analysis import render_report
    from repro.core import SurveyRunner
    from repro.devices import catalog_profiles as _profiles

    if args.from_dir:
        from repro.core.store import CampaignStore, StoreError

        try:
            store = CampaignStore.open(args.from_dir)
            results = store.load_results()
        except StoreError as exc:
            raise SystemExit(str(exc)) from None
        title = f"Home gateway survey ({len(store.devices())} devices)"
        report = render_report(results, title=title)
        if args.output:
            pathlib.Path(args.output).write_text(report)
            out(f"wrote {args.output}")
        else:
            out(report)
        return 0

    tags = _resolve_tags(args.tags)
    impairment, faults = _parse_chaos(args)
    runner = SurveyRunner(
        profiles=_profiles(tags),
        seed=args.seed,
        udp_repetitions=args.repetitions,
        udp5_repetitions=1,
        cgn_subscribers=args.subscribers,
        cgn_block_size=args.block_size,
        attack_rate=args.attack_rate,
        attack_duration=args.attack_duration,
        metro_requests=args.metro_requests,
        metro_idle=args.metro_idle,
        metro_flap=args.metro_flap,
        matrix_pairs=args.matrix_pairs,
        matrix_cgn=args.matrix_cgn,
        workload_mix=args.workload_mix,
        workload_ramp=args.load_ramp,
        fw_rules=args.fw_rules,
        jobs=args.jobs,
        fastpath=not args.no_fastpath,
        impairment=impairment,
        faults=faults,
        trace_dir=args.trace,
        pcap_dir=args.pcap,
        metrics=args.metrics,
    )
    try:
        results = runner.run(
            tests=_cgn_selection(args, _family_selection(args), DEFAULT_REPORT_TESTS)
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    report = render_report(results, title=f"Home gateway survey ({len(tags)} devices)")
    if args.output:
        pathlib.Path(args.output).write_text(report)
        out(f"wrote {args.output}")
    else:
        out(report)
    if results.metrics is not None:
        totals = results.metrics.counters
        out(f"[metrics] {sum(totals.values())} events across {len(totals)} counters")
    _report_errors(results, out)
    return 0


def cmd_bench(args, out) -> int:
    from repro.core import SurveyRunner, write_bench_json
    from repro.devices import catalog_profiles as _profiles

    tags = _resolve_tags(args.tags)
    if args.partitions is not None:
        return _bench_partitioned(args, tags, out)
    impairment, faults = _parse_chaos(args)
    runner = SurveyRunner(
        profiles=_profiles(tags),
        seed=args.seed,
        udp_repetitions=args.repetitions,
        udp5_repetitions=1,
        tcp1_cutoff=args.tcp1_cutoff,
        transfer_bytes=args.transfer_bytes,
        cgn_subscribers=args.subscribers,
        cgn_block_size=args.block_size,
        attack_rate=args.attack_rate,
        attack_duration=args.attack_duration,
        metro_requests=args.metro_requests,
        metro_idle=args.metro_idle,
        metro_flap=args.metro_flap,
        matrix_pairs=args.matrix_pairs,
        matrix_cgn=args.matrix_cgn,
        workload_mix=args.workload_mix,
        workload_ramp=args.load_ramp,
        fw_rules=args.fw_rules,
        jobs=args.jobs,
        fastpath=not args.no_fastpath,
        impairment=impairment,
        faults=faults,
        trace_dir=args.trace,
        pcap_dir=args.pcap,
        metrics=args.metrics,
    )
    selected = _cgn_selection(args, _family_selection(args), DEFAULT_BENCH_TESTS)
    try:
        results = runner.run(tests=selected)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    stats = results.stats
    out(f"devices: {len(tags)}   families: {' '.join(selected)}   jobs: {args.jobs}")
    if impairment is not None or faults:
        out(f"impairment: {args.impair or 'none'}   faults: {', '.join(args.fault or []) or 'none'}")
    out(f"elapsed: {runner.last_elapsed:.2f}s wall   {stats.wall_seconds:.2f}s cpu (shard sum)")
    out(f"events: {stats.events_processed}   events/sec (cpu): {stats.events_per_sec:.0f}")
    out(f"segments modeled: {stats.segments_modeled}   "
        f"fastpath saved: {stats.fastpath_events_saved} events "
        f"in {stats.fastpath_windows} windows")
    out(f"stale-entry purges: {stats.stale_purges} ({stats.stale_entries_purged} entries)")
    for family in selected:
        wall = stats.family_wall.get(family, 0.0)
        events = stats.family_events.get(family, 0)
        segments = stats.family_segments.get(family, 0)
        out(f"  {family:>10}  {wall:8.2f}s  {events:>9} events  {segments:>9} segments")
    _report_errors(results, out)
    if args.output:
        from repro.core.store import SCHEMA_VERSION

        payload = {
            "schema_version": SCHEMA_VERSION,
            "config_hash": runner.fingerprint(),
            "campaign": {
                "devices": len(tags),
                "tests": list(selected),
                "seed": args.seed,
                "repetitions": args.repetitions,
                "tcp1_cutoff": args.tcp1_cutoff,
                "transfer_bytes": args.transfer_bytes,
                "impairment": impairment.describe() if impairment is not None else None,
                "faults": [fault.describe() for fault in faults],
                "cgn_subscribers": args.subscribers,
                "cgn_block_size": args.block_size,
                "attack_rate": args.attack_rate,
                "attack_duration": args.attack_duration,
                "matrix_pairs": args.matrix_pairs,
                "matrix_cgn": args.matrix_cgn,
                "workload_mix": args.workload_mix,
                "workload_ramp": args.load_ramp,
                "fw_rules": args.fw_rules,
                "fastpath": not args.no_fastpath,
            },
            "elapsed_wall_seconds": round(runner.last_elapsed, 3),
            "shard_errors": [
                {"tag": error.tag, "family": error.family, "error": error.error, "message": error.message}
                for error in results.errors
            ],
            "stats": stats.as_dict(),
        }
        if results.metrics is not None:
            payload["metrics"] = results.metrics.as_dict()
        from repro.workload.families import scaling_curves

        curves = scaling_curves(results)
        if curves is not None:
            # The workload tier's deliverable: the decoded scaling curves
            # ride in the bench dump (BENCH_workload.json) so the loss
            # curves are diffable without replaying the campaign.
            payload["curves"] = curves
        write_bench_json(args.output, payload)
        out(f"wrote {args.output}")
        history = _append_bench_history(pathlib.Path(args.output), runner, stats)
        if history is not None:
            out(f"appended {history}")
    return 0


def _bench_partitioned(args, tags: Sequence[str], out) -> int:
    """``bench --partitions N``: time a partitioned metro campaign.

    The dump gains a ``partition`` block (worker count, sync rounds,
    boundary-frame count) and the history entry records the same three, so
    ``tools/bench_diff.py`` can guard the partition-scaling rows like any
    other family wall time.
    """
    from repro.core import write_bench_json
    from repro.core.partition import PartitionError
    from repro.core.store import SCHEMA_VERSION

    runner = _partition_runner(args, tags)
    selected = _cgn_selection(args, _family_selection(args), list(METRO_FAMILIES))
    try:
        results = runner.run(tests=selected)
    except PartitionError as exc:
        raise SystemExit(str(exc)) from None
    stats = results.stats
    out(f"devices: {len(tags)}   families: {' '.join(selected)}   "
        f"partitions: {runner.partitions}")
    out(f"elapsed: {runner.last_elapsed:.2f}s wall   "
        f"sync rounds: {runner.last_sync_rounds}   "
        f"boundary frames: {runner.last_boundary_frames}")
    if runner.last_island_cpu_seconds:
        islands = " ".join(f"{s:.2f}" for s in runner.last_island_cpu_seconds)
        out(f"cpu: hub {runner.last_hub_cpu_seconds:.2f}s   islands [{islands}]s   "
            f"critical path: {runner.last_critical_path_seconds:.2f}s")
    out(f"events: {stats.events_processed}   events/sec (cpu): {stats.events_per_sec:.0f}")
    for family in selected:
        wall = stats.family_wall.get(family, 0.0)
        events = stats.family_events.get(family, 0)
        out(f"  {family:>10}  {wall:8.2f}s  {events:>9} events")
    if args.output:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "config_hash": runner.fingerprint(),
            "campaign": {
                "devices": len(tags),
                "tests": list(selected),
                "seed": args.seed,
                "cgn_subscribers": args.subscribers,
                "cgn_block_size": args.block_size,
                "metro_requests": args.metro_requests,
                "metro_idle": args.metro_idle,
                "metro_flap": args.metro_flap,
                "fastpath": not args.no_fastpath,
            },
            "partition": {
                "partitions": runner.partitions,
                "sync_rounds": runner.last_sync_rounds,
                "boundary_frames": runner.last_boundary_frames,
                "island_cpu_seconds": [
                    round(s, 3) for s in runner.last_island_cpu_seconds
                ],
                "hub_cpu_seconds": round(runner.last_hub_cpu_seconds, 3),
                "critical_path_seconds": round(
                    runner.last_critical_path_seconds, 3
                ),
            },
            "elapsed_wall_seconds": round(runner.last_elapsed, 3),
            "shard_errors": [],
            "stats": stats.as_dict(),
        }
        write_bench_json(args.output, payload)
        out(f"wrote {args.output}")
        history = _append_bench_history(
            pathlib.Path(args.output), runner, stats,
            extra={
                "partitions": runner.partitions,
                "sync_rounds": runner.last_sync_rounds,
                "boundary_frames": runner.last_boundary_frames,
                "elapsed_wall_seconds": round(runner.last_elapsed, 3),
                "critical_path_seconds": round(
                    runner.last_critical_path_seconds, 3
                ),
            },
        )
        if history is not None:
            out(f"appended {history}")
    return 0


def _append_bench_history(output: pathlib.Path, runner, stats, extra=None) -> Optional[pathlib.Path]:
    """Append one trajectory point to ``BENCH_history.json`` next to the dump.

    The ``pr`` field counts the entries in the repo's ``CHANGES.md`` (one
    line per merged PR), looked up from the output file upwards; it is
    ``None`` when no changelog is in sight (e.g. dumps into /tmp).
    """
    history_path = output.resolve().parent / "BENCH_history.json"
    pr = None
    for ancestor in [output.resolve().parent, *output.resolve().parents]:
        changelog = ancestor / "CHANGES.md"
        if changelog.is_file():
            pr = sum(1 for line in changelog.read_text().splitlines() if line.startswith("- PR"))
            break
    entry = {
        "pr": pr,
        "config_hash": runner.fingerprint(),
        "events_per_sec": round(stats.events_per_sec, 1),
        "family_wall": {k: round(v, 6) for k, v in sorted(stats.family_wall.items())},
    }
    if extra:
        entry.update(extra)
    try:
        history = json.loads(history_path.read_text()) if history_path.is_file() else []
        if not isinstance(history, list):
            return None
    except (OSError, ValueError):
        return None
    history.append(entry)
    history_path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return history_path


def cmd_trace(args, out) -> int:
    summaries = summarize_paths([pathlib.Path(path) for path in args.paths])
    if not summaries:
        raise SystemExit(f"no trace files found under: {' '.join(args.paths)}")
    if args.json:
        out(json.dumps(summaries, indent=2, sort_keys=True))
    else:
        out(render_summary(summaries))
    return 0


def cmd_compliance(args, out) -> int:
    tags = _resolve_tags(args.tags)
    udp1 = UdpTimeoutProbe.udp1(repetitions=args.repetitions).run_all(_build_bed(tags, args.seed))
    tcp1 = TcpTimeoutProbe().run_all(_build_bed(tags, args.seed))
    icmp = IcmpTranslationTest().run_all(_build_bed(tags, args.seed))
    reports = {tag: check_device(tag, udp1=udp1[tag], tcp1=tcp1[tag], icmp=icmp[tag]) for tag in tags}
    for tag in tags:
        report = reports[tag]
        failures = report.failures()
        status = "PASS" if not failures else f"FAIL ({len(failures)})"
        out(f"{tag:>5}  {status}")
        for failure in failures:
            out(f"        {failure}")
    summary = population_summary(reports)
    out("")
    out(f"below RFC4787 120s: {summary['udp_below_required']:.0%}   "
        f"below RFC5382 124min: {summary['tcp_below_minimum']:.0%}   "
        f"RFC5508 compliant: {summary['icmp_compliant']:.0%}")
    return 0


def _add_cgn_flags(parser: argparse.ArgumentParser) -> None:
    """The NAT444 + adversarial campaign flags shared by survey/report/bench."""
    parser.add_argument("--cgn", action="store_true",
                        help="run the NAT444 families (cgn_timeouts, cgn_exhaustion) "
                        "behind a carrier-grade NAT; appends to --families if given")
    parser.add_argument("--subscribers", type=int, default=8,
                        help="home gateways behind each CGN (default: 8)")
    parser.add_argument("--block-size", type=int, default=16, dest="block_size",
                        help="external ports per CGN allocation block (default: 16)")
    parser.add_argument("--attack", action="store_true",
                        help="run the adversarial NAT-abuse families (attack_portflood, "
                        "attack_keepalive, attack_rst) through the NAT444 chain; "
                        "appends to --families if given")
    parser.add_argument("--attack-rate", type=float, default=50.0, dest="attack_rate",
                        help="attacker packet rate in pkt/s (default: 50)")
    parser.add_argument("--attack-duration", type=float, default=20.0, dest="attack_duration",
                        help="flood duration in seconds (default: 20)")
    parser.add_argument("--metro", action="store_true",
                        help="run the metro-scale NAT444 family (metro_load): one "
                        "CGN segment per device tag behind a shared core; "
                        "appends to --families if given")
    parser.add_argument("--metro-requests", type=int, default=8, dest="metro_requests",
                        help="echo requests per metro subscriber (default: 8)")
    parser.add_argument("--metro-idle", type=float, default=0.0, dest="metro_idle",
                        help="idle seconds spliced into the middle of each metro "
                        "subscriber's schedule (drives NAT bindings through "
                        "expiry; default: 0)")
    parser.add_argument("--metro-flap", default="", dest="metro_flap", metavar="SPEC",
                        help="flap one segment's core link, e.g. tag=al,at=30.1,for=0.2")
    parser.add_argument("--matrix", action="store_true",
                        help="run the pairwise NAT-traversal family (traversal_matrix): "
                        "STUN + hole punch + relay fallback + keepalive ladder for "
                        "every ordered device pair; appends to --families if given")
    parser.add_argument("--pairs", default="", dest="matrix_pairs", metavar="A+B,C+D",
                        help="restrict --matrix to an explicit pair list, e.g. "
                        "al+be1,dl5+al (default: every ordered pair)")
    parser.add_argument("--matrix-cgn", action="store_true", dest="matrix_cgn",
                        help="with --matrix: also run each pair with NAT444 on one "
                        "side, the other, and both (.cgn-a/.cgn-b/.cgn-ab variants)")
    parser.add_argument("--workload", action="store_true",
                        help="run the subscriber-workload families (workload_mix, "
                        "fwcost_scaling) through the NAT444 chain; appends to "
                        "--families if given")
    parser.add_argument("--mix", default="residential", dest="workload_mix",
                        choices=("residential", "streaming", "p2p-heavy"),
                        help="application mix driving workload_mix (default: residential)")
    parser.add_argument("--load-ramp", default="", dest="load_ramp", metavar="N,N,...",
                        help="active-subscriber counts per workload_mix load point, "
                        "e.g. 1,2,4,8 (default: powers of two up to --subscribers)")
    parser.add_argument("--rules", default="", dest="fw_rules", metavar="N,N,...",
                        help="firewall rule counts (and, in a second curve, conntrack "
                        "sizes) for fwcost_scaling, e.g. 0,256,1024,4096 "
                        "(default: 0,256,1024,4096)")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The flight-recorder flags shared by probe/survey/report/bench."""
    parser.add_argument("--trace", metavar="DIR",
                        help="write per-device JSONL event traces into DIR")
    parser.add_argument("--pcap", metavar="DIR",
                        help="write per-link pcap captures into DIR (open in Wireshark)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect campaign counters/gauges/histograms")
    parser.add_argument("--no-fastpath", action="store_true", dest="no_fastpath",
                        help="run every simulation on the staged event engine "
                        "(the fast path's property-test oracle); results are "
                        "identical, wall-clock is not")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Home-gateway characteristics laboratory (IMC 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-devices", help="print the Table 1 inventory").set_defaults(func=cmd_list_devices)

    probe = sub.add_parser("probe", help="run one measurement family")
    probe.add_argument("--test", required=True, choices=PROBE_CHOICES)
    probe.add_argument("--tags", nargs="*", help="device tags (default: all 34)")
    probe.add_argument("--repetitions", type=int, default=3)
    probe.add_argument("--seed", type=int, default=0)
    _add_obs_flags(probe)
    probe.set_defaults(func=cmd_probe)

    survey = sub.add_parser("survey", help="run several families")
    survey.add_argument("--tests", nargs="+", default=None, choices=PROBE_CHOICES,
                        help="families to run (default: udp1 tcp1 tcp4)")
    survey.add_argument("--families", metavar="F1,F2",
                        help=f"comma-joined campaign families ({','.join(FAMILY_CHOICES)}); "
                        "implies the durable campaign path")
    survey.add_argument("--tags", nargs="*")
    survey.add_argument("--repetitions", type=int, default=3)
    survey.add_argument("--seed", type=int, default=0)
    survey.add_argument("--csv-dir", help="export each series as CSV here")
    survey.add_argument("--jobs", type=int, default=1, help="shard devices across N worker processes")
    survey.add_argument("--partitions", type=int, default=None, metavar="N",
                        help="cut the (partitionable) topology into N islands in "
                        "separate worker processes, synchronized at boundary links "
                        "(1 = the single-process reference engine; cells are "
                        "byte-identical either way)")
    survey.add_argument("--out", metavar="DIR",
                        help="persist every (device, family) cell into a campaign store at DIR")
    survey.add_argument("--resume", action="store_true",
                        help="with --out: skip cells already in the store, run only the missing ones")
    _add_cgn_flags(survey)
    _add_obs_flags(survey)
    survey.set_defaults(func=cmd_survey)

    stun = sub.add_parser("classify", help="STUN-style classification")
    stun.add_argument("--tags", nargs="*")
    stun.add_argument("--seed", type=int, default=0)
    stun.set_defaults(func=cmd_classify)

    report = sub.add_parser("report", help="full markdown survey report")
    report.add_argument("--tests", nargs="+", default=None, choices=FAMILY_CHOICES,
                        help="families to run (default: udp1 udp2 udp3 tcp1 tcp4)")
    report.add_argument("--families", metavar="F1,F2",
                        help=f"comma-joined campaign families ({','.join(FAMILY_CHOICES)})")
    report.add_argument("--from", dest="from_dir", metavar="DIR",
                        help="render from a campaign store written by `survey --out` (no simulation)")
    report.add_argument("--tags", nargs="*")
    report.add_argument("--repetitions", type=int, default=3)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--output", help="write the markdown here instead of stdout")
    report.add_argument("--jobs", type=int, default=1, help="shard devices across N worker processes")
    report.add_argument("--impair", help="link impairment, e.g. loss=0.01,reorder=5ms,dup=0.001")
    report.add_argument("--fault", action="append",
                        help="gateway fault, e.g. crash@t=30,boot=never,device=dl8 (repeatable)")
    _add_cgn_flags(report)
    _add_obs_flags(report)
    report.set_defaults(func=cmd_report)

    bench = sub.add_parser("bench", help="time a campaign and dump perf counters")
    bench.add_argument("--tests", nargs="+", default=None, choices=FAMILY_CHOICES,
                       help="families to run (default: udp1 tcp2)")
    bench.add_argument("--families", metavar="F1,F2",
                       help=f"comma-joined campaign families ({','.join(FAMILY_CHOICES)})")
    bench.add_argument("--tags", nargs="*")
    bench.add_argument("--repetitions", type=int, default=1)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--tcp1-cutoff", type=float, default=600.0)
    bench.add_argument("--transfer-bytes", type=int, default=512 * 1024)
    bench.add_argument("--jobs", type=int, default=1)
    bench.add_argument("--partitions", type=int, default=None, metavar="N",
                       help="time a partitioned campaign on N worker processes "
                       "(see `survey --partitions`)")
    bench.add_argument("--impair", help="link impairment, e.g. loss=0.01,reorder=5ms,dup=0.001")
    bench.add_argument("--fault", action="append",
                       help="gateway fault, e.g. crash@t=30,boot=never,device=dl8 (repeatable)")
    bench.add_argument("--output", help="write BENCH_survey.json here")
    _add_cgn_flags(bench)
    _add_obs_flags(bench)
    bench.set_defaults(func=cmd_bench)

    trace = sub.add_parser("trace", help="summarize JSONL trace files from --trace")
    trace.add_argument("paths", nargs="+",
                       help="trace files or directories of per-device .jsonl files")
    trace.add_argument("--json", action="store_true", help="emit the summary as JSON")
    trace.set_defaults(func=cmd_trace)

    comp = sub.add_parser("compliance", help="grade against the IETF BCPs")
    comp.add_argument("--tags", nargs="*")
    comp.add_argument("--repetitions", type=int, default=1)
    comp.add_argument("--seed", type=int, default=0)
    comp.set_defaults(func=cmd_compliance)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args, print)


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
