"""Builds the Figure-1 topology."""

from __future__ import annotations

import random
from dataclasses import dataclass
from ipaddress import IPv4Address, IPv4Network
from typing import Dict, List, Optional, Sequence

from repro.devices.profile import DeviceProfile
from repro.gateway.device import HomeGateway
from repro.gateway.faults import FaultSpec
from repro.netsim.addresses import mac_allocator
from repro.netsim.impair import Impairment, impair_seed
from repro.netsim.link import Link
from repro.netsim.sim import Simulation
from repro.netsim.switch import VlanSwitch
from repro.protocols.dhcp import DhcpClientService, DhcpServerService
from repro.protocols.dns import DnsAuthoritativeServer
from repro.protocols.stack import Host

LINK_RATE_BPS = 100e6  # the testbed's 100 Mb/s Ethernet
LINK_DELAY = 25e-6

#: Default zone served by the testbed's DNS server (the paper's hiit.fi).
DEFAULT_ZONE_NAME = "test.hiit.fi"
#: The canonical answer for the default name (TEST-NET-1 documentation space).
DEFAULT_ZONE_ANSWER = IPv4Address("192.0.2.80")


@dataclass
class GatewayPort:
    """Everything attached to one gateway slot ``n``."""

    index: int
    profile: DeviceProfile
    gateway: HomeGateway
    wan_network: IPv4Network
    lan_network: IPv4Network
    server_ip: IPv4Address
    server_iface_index: int
    client_iface_index: int
    client_dhcp: Optional[DhcpClientService] = None

    @property
    def tag(self) -> str:
        return self.profile.tag


class Testbed:
    """The assembled testbed: server, switches, gateways, client."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, sim: Simulation, profiles: Sequence[DeviceProfile]):
        self.sim = sim
        self.macs = mac_allocator()
        self.server = Host(sim, "test-server", self.macs)
        self.client = Host(sim, "test-client", self.macs)
        # §4.4: some devices share one MAC between WAN and LAN ports, which
        # forces physically separate switches — so the testbed uses two.
        self.wan_switch = VlanSwitch(sim, "wan-switch", self.macs)
        self.lan_switch = VlanSwitch(sim, "lan-switch", self.macs)
        self.ports: Dict[str, GatewayPort] = {}
        #: Every link in construction order; the ordinal seeds per-link
        #: impairment RNGs, so it must be deterministic.
        self.links: List[Link] = []
        self.dns_zone = DnsAuthoritativeServer(self.server, {DEFAULT_ZONE_NAME: DEFAULT_ZONE_ANSWER})
        for number, profile in enumerate(profiles, start=1):
            self._add_gateway(number, profile)

    @classmethod
    def build(
        cls, profiles: Sequence[DeviceProfile], seed: int = 0, fastpath: bool = True
    ) -> "Testbed":
        """Construct the testbed and bring every gateway and client VLAN up.

        ``fastpath=False`` pins the whole run — bring-up included — to the
        staged event engine (the eager kernels' property-test oracle).
        """
        sim = Simulation(seed=seed)
        sim.fastpath = fastpath
        bed = cls(sim, profiles)
        bed.bring_up()
        return bed

    # -- construction -----------------------------------------------------

    def _link(self, label: str) -> Link:
        link = Link(self.sim, LINK_RATE_BPS, LINK_DELAY)
        link.label = label
        self.links.append(link)
        return link

    def _add_gateway(self, number: int, profile: DeviceProfile) -> None:
        if profile.tag in self.ports:
            raise ValueError(f"duplicate device tag {profile.tag!r}")
        wan_network = IPv4Network(f"10.0.{number}.0/24")
        lan_network = IPv4Network(f"192.168.{number}.0/24")
        server_ip = IPv4Address(f"10.0.{number}.1")

        # Server side: one VLAN interface + per-VLAN DHCP service + DNS A record.
        server_iface = self.server.new_interface()
        server_iface.configure(server_ip, wan_network)
        self._link(f"{profile.tag}:srv").attach(
            server_iface, self.wan_switch.new_port(1000 + number)
        )
        DhcpServerService(
            self.server,
            server_iface.index,
            wan_network,
            server_ip,
            router=server_ip,
            dns_servers=[server_ip],
            first_offset=2,
        )
        self.dns_zone.add_record(f"vlan{number}.{DEFAULT_ZONE_NAME}", server_ip)

        # The gateway between the two switches.
        gateway = HomeGateway(self.sim, profile, self.macs, lan_network=lan_network)
        self._link(f"{profile.tag}:wan").attach(
            gateway.wan_iface, self.wan_switch.new_port(1000 + number)
        )
        self._link(f"{profile.tag}:lan").attach(
            gateway.lan_iface, self.lan_switch.new_port(2000 + number)
        )

        # Client side: one VLAN interface, configured later by the gateway's
        # DHCP server (interface-specific routes only).
        client_iface = self.client.new_interface()
        self._link(f"{profile.tag}:cli").attach(
            client_iface, self.lan_switch.new_port(2000 + number)
        )

        self.ports[profile.tag] = GatewayPort(
            index=number,
            profile=profile,
            gateway=gateway,
            wan_network=wan_network,
            lan_network=lan_network,
            server_ip=server_ip,
            server_iface_index=server_iface.index,
            client_iface_index=client_iface.index,
        )

    # -- bring-up -------------------------------------------------------------

    def bring_up(self, timeout: float = 60.0) -> None:
        """DHCP-configure every gateway WAN and every client VLAN interface."""
        for port in self.ports.values():
            def gateway_ready(gw: HomeGateway, port: GatewayPort = port) -> None:
                client = DhcpClientService(self.client, port.client_iface_index)
                port.client_dhcp = client
                client.start()

            port.gateway.start(on_ready=gateway_ready)
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if all(p.client_dhcp is not None and p.client_dhcp.configured for p in self.ports.values()):
                break
            if not self.sim.step():
                break
        not_up = [p.tag for p in self.ports.values() if p.client_dhcp is None or not p.client_dhcp.configured]
        if not_up:
            raise RuntimeError(f"testbed bring-up failed for: {not_up}")

    # -- chaos ----------------------------------------------------------------

    def apply_impairment(self, impairment: Impairment) -> None:
        """Install ``impairment`` on every link, each with its own RNG.

        Per-link seeds derive from the simulation seed and the link's
        construction ordinal (:func:`~repro.netsim.impair.impair_seed`), so
        the perturbation a device suffers is a pure function of the
        campaign seed — identical under any ``jobs`` and any device subset.
        Call after :meth:`bring_up`: DHCP configuration stays clean and any
        flap window is anchored at measurement start.
        """
        for ordinal, link in enumerate(self.links):
            link.impair(impairment, rng=random.Random(impair_seed(self.sim.seed, ordinal)))

    def schedule_faults(self, faults: Sequence[FaultSpec]) -> None:
        """Schedule every applicable fault against this testbed's gateways."""
        for fault in faults:
            for port in self.ports.values():
                if fault.applies_to(port.tag):
                    port.gateway.schedule_crash(fault.at, fault.boot)

    # -- accessors ---------------------------------------------------------------

    def port(self, tag: str) -> GatewayPort:
        return self.ports[tag]

    def tags(self) -> List[str]:
        return list(self.ports)

    def client_iface(self, tag: str):
        return self.client.interfaces[self.ports[tag].client_iface_index]

    def client_ip(self, tag: str) -> IPv4Address:
        ip = self.client_iface(tag).ip
        if ip is None:
            raise RuntimeError(f"client interface for {tag} not configured")
        return ip

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Testbed {len(self.ports)} gateways at t={self.sim.now:.3f}>"
