"""The experimental testbed of Figure 1, in software.

:class:`Testbed` wires a test server, two VLAN switches, N home gateways and
a test client exactly like the paper: each gateway's WAN port lives on VLAN
``1000+n`` (subnet ``10.0.n.0/24``) against a per-VLAN DHCP service on the
test server, and its LAN port on VLAN ``2000+n`` (subnet ``192.168.n.0/24``)
against a per-VLAN DHCP client on the test client.  A management channel —
the paper's ``testrund`` daemons — coordinates measurements out of band.
"""

from repro.testbed.testbed import GatewayPort, Testbed
from repro.testbed.testrund import ManagementChannel, Testrund

__all__ = ["Testbed", "GatewayPort", "ManagementChannel", "Testrund"]
