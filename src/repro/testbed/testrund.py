"""The coordination daemons (the paper's ``testrund``).

The physical testbed coordinated client and server over a dedicated
management link so that control traffic never crossed the gateways under
test.  :class:`ManagementChannel` plays that role here: it delivers control
messages between the two testrund instances after a small fixed latency,
via the simulator — never through the data network.

Measurements use :class:`Testrund` to schedule actions on the *other* host
("when your sleep timer expires, tell the server to send a response packet
back through the home gateway", §3.2.1).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.netsim.sim import Simulation

#: Latency of the dedicated management link.  Small but nonzero, so control
#: ordering is realistic; negligible against the 1 s convergence target.
MANAGEMENT_LATENCY = 0.001


class ManagementChannel:
    """Bidirectional out-of-band control channel."""

    def __init__(self, sim: Simulation, latency: float = MANAGEMENT_LATENCY):
        self.sim = sim
        self.latency = latency
        self.messages_delivered = 0

    def call(self, handler: Callable[..., None], *args: Any) -> None:
        """Invoke ``handler(*args)`` on the far side after the link latency."""
        self.messages_delivered += 1
        self.sim.schedule(self.latency, handler, *args)


class Testrund:
    """One coordination daemon: named handlers reachable over management."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, name: str, channel: ManagementChannel):
        self.name = name
        self.channel = channel
        self._handlers: Dict[str, Callable[..., None]] = {}

    def register(self, command: str, handler: Callable[..., None]) -> None:
        """Expose ``handler`` under ``command`` to the peer daemon."""
        self._handlers[command] = handler

    def unregister(self, command: str) -> None:
        self._handlers.pop(command, None)

    def invoke(self, command: str, *args: Any) -> None:
        """Called by the *peer*: run a registered handler after link latency."""
        handler = self._handlers.get(command)
        if handler is None:
            raise KeyError(f"testrund {self.name!r} has no handler {command!r}")
        self.channel.call(handler, *args)
