"""Published numbers from the paper, for paper-vs-measured comparison.

Everything here is transcribed from Hätönen et al., IMC 2010: the device
orderings of every figure's x-axis, the population medians/means printed in
the plot legends, and the named anchors called out in the running text.
The benches print these side by side with the reproduction's measurements.
"""

from __future__ import annotations

# -- Table 1: the studied devices -----------------------------------------

ALL_TAGS = (
    "al", "ap", "as1", "be1", "be2", "bu1",
    "dl1", "dl2", "dl3", "dl4", "dl5", "dl6", "dl7", "dl8", "dl9", "dl10",
    "ed", "je",
    "ls1", "ls2", "ls3", "ls5", "owrt", "to",
    "ng1", "ng2", "ng3", "ng4", "ng5",
    "nw1", "smc", "te", "we", "zy1",
)

DEVICE_COUNT = 34

# -- Figure 3: UDP-1 (single outbound packet) --------------------------------

FIG3_ORDER = (
    "je", "owrt", "te", "to", "ed", "al", "we", "ng2", "ap", "ls3", "ls5",
    "dl1", "dl2", "dl6", "dl7", "as1", "bu1", "ls2", "nw1", "dl3", "dl5",
    "be1", "dl10", "dl4", "dl8", "smc", "dl9", "ng1", "ng3", "ng4", "zy1",
    "be2", "ng5", "ls1",
)
FIG3_POP_MEDIAN = 90.00
FIG3_POP_MEAN = 160.41
UDP1_SHORTEST_SECONDS = 30.0     # je (shared by owrt, te, to, ed)
UDP1_LONGEST_SECONDS = 691.0     # ls1, "more than twenty times longer"
#: RFC 4787 levels discussed in §4.1.
RFC4787_REQUIRED_SECONDS = 120.0
RFC4787_RECOMMENDED_SECONDS = 600.0

# -- Figure 4: UDP-2 (single packet out, stream in) ------------------------------

FIG4_ORDER = (
    "ap", "ng2", "we", "je", "ls2", "nw1", "be1", "dl3", "dl5", "dl10",
    "ng3", "ng4", "ng5", "as1", "bu1", "dl1", "dl2", "dl6", "dl7", "owrt",
    "te", "ed", "ls3", "ls5", "to", "be2", "al", "dl4", "dl8", "dl9",
    "ng1", "smc", "zy1", "ls1",
)
FIG4_POP_MEDIAN = 180.00
FIG4_POP_MEAN = 174.67
UDP2_MINIMUM_SECONDS = 54.0
UDP2_BE2_APPROX = 202.0
#: Devices the text calls out for a substantial inter-quartile range
#: ("very coarse-grained binding timers").
COARSE_TIMER_TAGS = ("we", "al", "je", "ng5")

# -- Figure 5: UDP-3 (bidirectional) -----------------------------------------------

FIG5_ORDER = (
    "ng2", "we", "je", "ls2", "nw1", "dl3", "dl5", "ap", "as1", "bu1",
    "dl1", "dl2", "dl6", "dl7", "owrt", "te", "ed", "ls3", "ls5", "to",
    "be1", "al", "dl10", "dl4", "dl8", "dl9", "ng1", "smc", "ng3", "ng4",
    "zy1", "be2", "ng5", "ls1",
)
FIG5_POP_MEDIAN = 181.00
FIG5_POP_MEAN = 225.94
#: Devices that lengthen timeouts in UDP-3 back toward their UDP-1 level.
UDP3_LENGTHENING_TAGS = ("be1", "dl10", "ng3", "ng4", "be2", "ng5")

# -- UDP-4 (§4.1, text only) ----------------------------------------------------------

UDP4_PRESERVING_DEVICES = 27
UDP4_PRESERVE_AND_REUSE = 23
UDP4_PRESERVE_NO_REUSE = 4
UDP4_NEVER_PRESERVE = 7

# -- Figure 6: UDP-5 per-service ---------------------------------------------------------

FIG6_SERVICES = ("dns", "http", "ntp", "snmp", "tftp")
#: The notable exception: dl8 shortens its timeout for the DNS port.
UDP5_DNS_EXCEPTION_TAG = "dl8"

# -- Figure 7: TCP-1 ------------------------------------------------------------------------

FIG7_ORDER = (
    "be1", "ng5", "be2", "al", "ls2", "we", "ls1", "as1", "nw1", "ng2",
    "je", "ng3", "ng4", "dl3", "dl5", "dl9", "dl10", "smc", "dl4", "dl1",
    "dl2", "dl7", "dl6", "dl8", "zy1", "to", "owrt",
    # the seven devices still holding bindings after the 24 h cutoff:
    "ap", "bu1", "ed", "ls3", "ls5", "ng1", "te",
)
FIG7_POP_MEDIAN_MINUTES = 59.98
FIG7_POP_MEAN_MINUTES = 386.46
TCP1_SHORTEST_SECONDS = 239.0     # be1, "less than 4 min"
TCP1_CUTOFF_MINUTES = 1440.0
TCP1_OVER_24H_TAGS = ("ap", "bu1", "ed", "ls3", "ls5", "ng1", "te")
RFC5382_MINIMUM_MINUTES = 124.0

# -- Figure 8: TCP-2 throughput ----------------------------------------------------------------

FIG8_ORDER = (
    "dl10", "ls1", "ap", "te", "owrt", "smc", "dl9", "ed", "zy1", "ng4",
    "ng5", "ng3", "nw1", "ls3", "ls5", "to", "ls2", "ng2", "je", "dl2",
    "dl1", "we", "as1", "dl7", "be2", "be1", "dl5", "ng1", "dl8", "al",
    "dl3", "dl6", "bu1", "dl4",
)
TCP2_LINE_RATE_DEVICES = 13
TCP2_UNIDIR_MEDIAN_MBPS = 59.0
TCP2_BIDIR_MEDIAN_MBPS = 35.0
TCP2_DL10_DOWN_MBPS = 6.0
TCP2_DL10_UP_MBPS = 6.0
TCP2_LS1_DOWN_MBPS = 8.0
TCP2_LS1_UP_MBPS = 6.0
TCP2_SMC_UP_MBPS = 41.0
TCP2_SMC_DOWN_MBPS = 27.0

# -- Figure 9: TCP-3 queuing delay ------------------------------------------------------------------

FIG9_ORDER = (
    "ng1", "dl5", "dl7", "dl3", "we", "al", "be1", "be2", "dl4", "dl6",
    "as1", "bu1", "je", "dl2", "dl1", "nw1", "to", "smc", "dl9", "ls2",
    "ng2", "ls3", "ls5", "ng3", "ng5", "zy1", "ed", "owrt", "te", "dl8",
    "ap", "ng4", "dl10", "ls1",
)
TCP3_DL10_DOWNLOAD_MS = 74.0
TCP3_DL10_BIDIR_MS = 291.0
TCP3_LS1_UPLOAD_MS = 110.0
TCP3_LS1_BIDIR_MS = 400.0
TCP3_BEST_BIDIR_INCREASE_MS = 2.0

# -- Figure 10: TCP-4 binding capacity ------------------------------------------------------------------

FIG10_ORDER = (
    "dl9", "smc", "dl10", "ls1", "dl4", "ng2", "ls5", "ng3", "to", "ls3",
    "ng5", "nw1", "be1", "ls2", "be2", "te", "dl2", "dl6", "dl1", "dl8",
    "owrt", "zy1", "ng4", "ed", "je", "dl3", "dl7", "as1", "dl5", "bu1",
    "al", "we", "ng1", "ap",
)
FIG10_POP_MEDIAN = 135.50
FIG10_POP_MEAN = 259.21
TCP4_MINIMUM_BINDINGS = 16        # dl9 and smc
TCP4_MAXIMUM_BINDINGS = 1024      # "ng1 and ap allow ca. 1024"

# -- Table 2 aggregates (§4.3) ---------------------------------------------------------------------------

SCTP_PASSING_DEVICES = 18
DCCP_PASSING_DEVICES = 0
FALLBACK_UNTRANSLATED_TAGS = ("dl4", "dl9", "dl10", "ls1")
FALLBACK_IP_ONLY_DEVICES = 20
ICMP_NO_TRANSLATION_TAG = "nw1"
ICMP_TCP_AS_RST_TAG = "ls2"
ICMP_NO_EMBEDDED_REWRITE_DEVICES = 16
ICMP_BAD_EMBEDDED_IP_CHECKSUM_TAGS = ("zy1", "ls1")
DNS_TCP_ACCEPTING_DEVICES = 14
DNS_TCP_ANSWERING_DEVICES = 10
DNS_TCP_VIA_UDP_TAG = "ap"

# -- Paper anchors per experiment family ------------------------------------------------------------------
# Which figure/table of the paper each registered experiment family maps to;
# the registry's report hooks use these for section headers, so a family
# renamed or added here shows the right anchor everywhere at once.

FAMILY_FIGURES = {
    "udp_timeouts": "Figures 2-5",
    "udp1": "Figure 3",
    "udp2": "Figure 4",
    "udp3": "Figure 5",
    "udp4": "§4.1",
    "udp5": "Figure 6",
    "tcp1": "Figure 7",
    "tcp2": "Figures 8-9",
    "tcp4": "Figure 10",
    "icmp": "Table 2",
    "transports": "Table 2",
    "dns": "Table 2",
    "other": "Table 2",
}
