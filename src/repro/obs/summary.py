"""Summarize JSONL trace files (the ``python -m repro trace`` subcommand).

A traced campaign leaves one ``<tag>.jsonl`` per device; this module reads
them back and answers the debugging questions a flight recorder exists for:
what happened to each device (event counts per kind), why packets died
(drop causes), and how long NAT bindings lived (from ``nat.expire``
lifetimes).  Everything is derived from the trace alone, so summaries work
on files shipped from another machine or another run.
"""

from __future__ import annotations

import json
import pathlib
import statistics
from typing import Any, Dict, Iterable, List, Union

__all__ = ["summarize_trace", "summarize_paths", "render_summary"]

PathLike = Union[str, pathlib.Path]

#: Traversal-experiment event kinds surfaced as their own summary block:
#: a trace of a STUN/hole-punch/relay run answers "did the punch go out,
#: did anything come back, did we fall back?" at a glance.
_TRAVERSAL_KINDS = (
    "stun.request",
    "stun.response",
    "punch.tx",
    "punch.rx",
    "relay.fallback",
)


def summarize_trace(path: PathLike) -> Dict[str, Any]:
    """Summarize one JSONL trace file into a JSON-safe dict."""
    events: Dict[str, int] = {}
    drops: Dict[str, int] = {}
    lifetimes: List[float] = []
    families: Dict[str, int] = {}
    span = [None, None]  # first/last timestamp
    total = 0
    sim_events = 0
    fastpath_saved = 0
    fastpath_windows = 0
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            total += 1
            kind = record.get("kind", "?")
            events[kind] = events.get(kind, 0) + 1
            family = record.get("family")
            if family:
                families[family] = families.get(family, 0) + 1
            if kind.endswith(".drop") or kind == "nat.refused":
                cause = record.get("cause", "?")
                drops[cause] = drops.get(cause, 0) + int(record.get("count", 1))
            elif kind == "nat.expire" and "lifetime" in record:
                lifetimes.append(float(record["lifetime"]))
            elif kind == "sim.stats":
                # Closing record each observed family writes: the engine's
                # own counters (heap events, fast-path elisions).
                sim_events += int(record.get("events", 0))
                fastpath_saved += int(record.get("fastpath_saved", 0))
                fastpath_windows += int(record.get("fastpath_windows", 0))
            t = record.get("t")
            if t is not None:
                span[0] = t if span[0] is None else min(span[0], t)
                span[1] = t if span[1] is None else max(span[1], t)
    summary: Dict[str, Any] = {
        "device": pathlib.Path(path).stem,
        "records": total,
        "events": dict(sorted(events.items())),
        "families": dict(sorted(families.items())),
        "drop_causes": dict(sorted(drops.items())),
        "virtual_span_seconds": None if span[0] is None else round(span[1] - span[0], 6),
    }
    traversal = {kind: events[kind] for kind in _TRAVERSAL_KINDS if kind in events}
    if traversal:
        summary["traversal"] = traversal
    if sim_events or fastpath_saved or fastpath_windows:
        summary["sim"] = {
            "events_processed": sim_events,
            "segments_modeled": sim_events + fastpath_saved,
            "fastpath_events_saved": fastpath_saved,
            "fastpath_windows": fastpath_windows,
        }
    if lifetimes:
        summary["binding_lifetimes_s"] = {
            "count": len(lifetimes),
            "min": round(min(lifetimes), 6),
            "median": round(statistics.median(lifetimes), 6),
            "max": round(max(lifetimes), 6),
        }
    return summary


def _expand(paths: Iterable[PathLike]) -> List[pathlib.Path]:
    """Resolve files and directories (sorted ``*.jsonl`` inside) to files."""
    files: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.jsonl")))
        else:
            files.append(path)
    return files


def summarize_paths(paths: Iterable[PathLike]) -> List[Dict[str, Any]]:
    """Summarize every trace file named by ``paths`` (dirs are expanded)."""
    return [summarize_trace(path) for path in _expand(paths)]


def render_summary(summaries: List[Dict[str, Any]]) -> str:
    """Human-readable rendering of :func:`summarize_paths` output."""
    lines: List[str] = []
    for summary in summaries:
        lines.append(f"{summary['device']}: {summary['records']} events"
                     + (f" over {summary['virtual_span_seconds']:.3f}s virtual"
                        if summary["virtual_span_seconds"] is not None else ""))
        if summary["families"]:
            per_family = "  ".join(f"{name}:{count}" for name, count in summary["families"].items())
            lines.append(f"  families     {per_family}")
        for kind, count in summary["events"].items():
            lines.append(f"  {kind:<15}{count}")
        if summary["drop_causes"]:
            causes = "  ".join(f"{cause}:{count}" for cause, count in summary["drop_causes"].items())
            lines.append(f"  drop causes  {causes}")
        traversal = summary.get("traversal")
        if traversal:
            lines.append(
                "  traversal    "
                f"stun req/resp {traversal.get('stun.request', 0)}/{traversal.get('stun.response', 0)}  "
                f"punch tx/rx {traversal.get('punch.tx', 0)}/{traversal.get('punch.rx', 0)}  "
                f"relay fallbacks {traversal.get('relay.fallback', 0)}"
            )
        sim = summary.get("sim")
        if sim:
            lines.append(
                f"  simulator    {sim['segments_modeled']} segments modeled "
                f"({sim['events_processed']} heap events, "
                f"{sim['fastpath_events_saved']} elided in {sim['fastpath_windows']} fast-path windows)"
            )
        lifetimes = summary.get("binding_lifetimes_s")
        if lifetimes:
            lines.append(
                f"  bindings     {lifetimes['count']} expired; lifetime "
                f"min/median/max = {lifetimes['min']:.1f}/{lifetimes['median']:.1f}/{lifetimes['max']:.1f} s"
            )
    return "\n".join(lines)
