"""Metrics registry: counters, gauges, histograms, virtual-time spans.

A :class:`MetricsRegistry` is the aggregate view of an observed run — where
the JSONL trace answers "what happened, in order", the registry answers "how
much, how often, how long".  It is a plain picklable value: each survey
shard builds its own, ships it back across the process-pool boundary on its
results, and :meth:`MetricsRegistry.merge` folds shards together in catalog
order, so the merged registry is identical under ``jobs=1`` and ``jobs=N``
and lands verbatim in ``BENCH_*.json``.

All quantities are deterministic: counts of typed events and *virtual-time*
durations.  Wall-clock never enters (that is
:class:`~repro.core.stats.SimStats`' job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Default histogram bucket upper bounds (seconds): spans NAT binding
#: lifetimes from sub-second transients to the 24 h TCP-1 cutoff.
DEFAULT_BOUNDS: Tuple[float, ...] = (0.1, 1.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0, 86400.0)


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the final
    slot is the overflow bucket.  Merging requires identical bounds.
    """

    bounds: Tuple[float, ...] = DEFAULT_BOUNDS
    bucket_counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(f"histogram bounds differ: {self.bounds} vs {other.bounds}")
        for index, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{f"le_{bound:g}": n for bound, n in zip(self.bounds, self.bucket_counts)},
                "overflow": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Counters, gauges, histograms and per-family virtual-time spans.

    Names are dotted strings; the :class:`MetricsSink` derives them from
    event kinds (``events.nat.bind``, ``drops.tail_drop``, ...), and the
    survey layer records one span per measurement family.  Merge semantics:
    counters and histograms add; gauges keep the maximum (they record
    high-water marks); spans accumulate count and virtual seconds.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: family -> {"count": runs, "virtual_seconds": total simulated time}
        self.spans: Dict[str, Dict[str, float]] = {}

    # -- recording --------------------------------------------------------

    def inc(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Record a high-water-mark gauge (merge keeps the max)."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(self, name: str, value: float, bounds: Tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds=bounds)
        histogram.observe(value)

    def record_span(self, family: str, virtual_seconds: float) -> None:
        """Account one measurement family run of ``virtual_seconds`` length."""
        span = self.spans.setdefault(family, {"count": 0, "virtual_seconds": 0.0})
        span["count"] += 1
        span["virtual_seconds"] += virtual_seconds

    # -- aggregation ------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (typically a shard's) into this one."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            self.gauge(name, value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram(bounds=histogram.bounds)
            mine.merge(histogram)
        for family, span in other.spans.items():
            mine_span = self.spans.setdefault(family, {"count": 0, "virtual_seconds": 0.0})
            mine_span["count"] += span["count"]
            mine_span["virtual_seconds"] += span["virtual_seconds"]

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable form for ``BENCH_*.json`` (sorted, JSON-safe)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": {k: v for k, v in sorted(self.gauges.items())},
            "histograms": {k: h.as_dict() for k, h in sorted(self.histograms.items())},
            "spans": {
                family: {"count": span["count"], "virtual_seconds": round(span["virtual_seconds"], 6)}
                for family, span in sorted(self.spans.items())
            },
        }


class MetricsSink:
    """Bus subscriber that folds the event stream into a registry.

    Every event increments ``events.<kind>``; drop events additionally
    increment ``drops.<cause>``; binding expiries feed the
    ``nat.binding_lifetime_s`` histogram.  Pure counting — no I/O — so it is
    cheap enough to leave on for whole campaigns.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def handle(self, t: float, kind: str, fields: Dict[str, Any]) -> None:
        registry = self.registry
        registry.inc(f"events.{kind}")
        if kind.endswith(".drop") or kind == "nat.refused":
            cause = fields.get("cause")
            if cause is not None:
                registry.inc(f"drops.{cause}", int(fields.get("count", 1)))
        elif kind == "nat.expire":
            lifetime = fields.get("lifetime")
            if lifetime is not None:
                registry.observe("nat.binding_lifetime_s", float(lifetime))
