"""Trace-bus sinks: JSONL event logs and per-link pcap captures.

Both sinks write files whose *content is a pure function of the simulation*:
records are stamped with virtual time only (never wall-clock), dict keys are
sorted, and floats use Python's shortest-round-trip ``repr`` — so a survey
traced at ``jobs=4`` produces byte-identical files to ``jobs=1``, and traces
are diffable artifacts across runs and machines.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Optional, TextIO

from repro.netsim.pcap import DEFAULT_SNAPLEN, write_pcap_header, write_pcap_record

#: Catch-all routing key for events that belong to no particular device
#: (e.g. ``timer.fire`` in a multi-device testbed).
SIM_DEVICE = "sim"


def _json_default(value: Any) -> str:
    """Serialize non-JSON scalars (IPv4Address, MacAddress, enums) as text."""
    return str(value)


class JsonlTraceSink:
    """Route events into one JSON-lines file per device.

    Every record looks like::

        {"family":"udp1","kind":"nat.bind","proto":"udp","t":12.5,...}

    Routing: an event's ``dev`` field names its device; ``link.*`` events
    route on the device prefix of their ``link`` label (``"je:wan"`` →
    ``je``); anything unattributed goes to ``default_device`` (the shard's
    device in a sharded survey, else ``"sim"``).  Underscore-prefixed fields
    (live objects for binary sinks) are omitted.

    The sink outlives individual testbeds: a survey shard keeps one sink
    across all its measurement families and updates :attr:`family` between
    them, so ``<tag>.jsonl`` holds the device's whole campaign in family
    execution order.
    """

    def __init__(self, directory: pathlib.Path | str, default_device: Optional[str] = None):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.default_device = default_device or SIM_DEVICE
        #: Measurement family stamped on each record; set by the observer.
        self.family: Optional[str] = None
        self._streams: Dict[str, TextIO] = {}
        self.records_written = 0

    def _stream_for(self, device: str) -> TextIO:
        stream = self._streams.get(device)
        if stream is None:
            stream = open(self.directory / f"{device}.jsonl", "w", encoding="utf-8")
            self._streams[device] = stream
        return stream

    def _route(self, fields: Dict[str, Any]) -> str:
        device = fields.get("dev")
        if device is not None:
            return str(device)
        label = fields.get("link")
        if isinstance(label, str) and ":" in label:
            return label.split(":", 1)[0]
        return self.default_device

    def handle(self, t: float, kind: str, fields: Dict[str, Any]) -> None:
        record: Dict[str, Any] = {"t": t, "kind": kind}
        if self.family is not None:
            record["family"] = self.family
        for key, value in fields.items():
            if not key.startswith("_"):
                record[key] = value
        line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=_json_default)
        self._stream_for(self._route(fields)).write(line + "\n")
        self.records_written += 1

    def close(self) -> None:
        for stream in self._streams.values():
            stream.close()
        self._streams.clear()


class PcapSink:
    """Write one classic-libpcap capture per link (``link.tx`` events).

    Filenames are ``<dev>.<family>.<role>.pcap`` for links labelled
    ``"<dev>:<role>"`` (the testbed labels every link it builds), so a
    traced survey leaves a Wireshark-ready capture of each device's four
    testbed wires per measurement family.  Frames are serialized to real
    wire bytes *at capture time* — later in-place NAT rewrites of the same
    packet object cannot retroactively alter the capture, exactly like a
    physical tap.
    """

    def __init__(self, directory: pathlib.Path | str, family: Optional[str] = None, snaplen: int = DEFAULT_SNAPLEN):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.family = family
        self.snaplen = snaplen
        self._streams: Dict[str, Any] = {}
        self.records_written = 0

    def _file_name(self, label: str) -> str:
        stem = label.replace(":", ".")
        if self.family:
            dev, sep, role = label.partition(":")
            stem = f"{dev}.{self.family}.{role}" if sep else f"{stem}.{self.family}"
        return f"{stem}.pcap"

    def handle(self, t: float, kind: str, fields: Dict[str, Any]) -> None:
        if kind != "link.tx":
            return
        frame = fields.get("_frame")
        if frame is None:
            return
        label = str(fields.get("link", "link"))
        stream = self._streams.get(label)
        if stream is None:
            stream = open(self.directory / self._file_name(label), "wb")
            write_pcap_header(stream, self.snaplen)
            self._streams[label] = stream
        write_pcap_record(stream, t, frame.to_bytes(), self.snaplen)
        self.records_written += 1

    def close(self) -> None:
        for stream in self._streams.values():
            stream.close()
        self._streams.clear()
