"""Observer sessions: binding the trace bus to testbeds for a whole run.

:class:`ObsConfig` is the picklable description of what to record — it rides
inside the survey's shard config across the process-pool boundary, exactly
like :class:`~repro.netsim.impair.Impairment` does for chaos.
:class:`ShardObserver` is the live counterpart a shard (or a CLI command)
builds from it: it owns the JSONL/pcap/metrics sinks for one device-or-
testbed's sequence of measurement families and attaches a fresh
:class:`~repro.obs.bus.TraceBus` to each family's simulation.

Lifecycle for one shard::

    observer = ShardObserver(config, device=tag)
    for family in families:
        bed = build_testbed()
        observer.begin(bed, family)     # bus on, sinks subscribed
        run_probe(bed)
        observer.finish(bed, family)    # bus off, pcaps closed, span noted
    observer.close()                    # JSONL streams closed

The JSONL sink spans families (one file per device for the whole campaign);
pcap sinks are per family (a capture records one testbed's links); the
metrics registry spans the shard and is merged campaign-wide afterwards.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs.bus import TraceBus
from repro.obs.metrics import MetricsRegistry, MetricsSink
from repro.obs.sinks import JsonlTraceSink, PcapSink

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.testbed.testbed import Testbed

__all__ = ["ObsConfig", "ShardObserver"]


@dataclass(frozen=True)
class ObsConfig:
    """What to record.  All-``None``/``False`` (the default) records nothing."""

    #: Directory for per-device JSONL traces, or ``None`` to disable.
    trace_dir: Optional[str] = None
    #: Directory for per-link pcap captures, or ``None`` to disable.
    pcap_dir: Optional[str] = None
    #: Collect a :class:`~repro.obs.metrics.MetricsRegistry`.
    metrics: bool = False

    @property
    def enabled(self) -> bool:
        """True when any sink is requested (an observer is worth building)."""
        return bool(self.trace_dir or self.pcap_dir or self.metrics)


class ShardObserver:
    """Live observability session for one shard (or one CLI testbed)."""

    def __init__(self, config: ObsConfig, device: Optional[str] = None):
        self.config = config
        self.device = device
        self.registry: Optional[MetricsRegistry] = MetricsRegistry() if config.metrics else None
        self._jsonl: Optional[JsonlTraceSink] = None
        if config.trace_dir is not None:
            self._jsonl = JsonlTraceSink(pathlib.Path(config.trace_dir), default_device=device)
        self._pcap: Optional[PcapSink] = None
        self._bus: Optional[TraceBus] = None
        self._family_started: float = 0.0

    def begin(self, bed: "Testbed", family: str) -> None:
        """Start observing ``bed`` for one measurement family."""
        bus = TraceBus.attach(bed.sim)
        if self._jsonl is not None:
            self._jsonl.family = family
            bus.subscribe(self._jsonl)
        if self.config.pcap_dir is not None:
            self._pcap = PcapSink(pathlib.Path(self.config.pcap_dir), family=family)
            bus.subscribe(self._pcap)
        if self.registry is not None:
            bus.subscribe(MetricsSink(self.registry))
        self._bus = bus
        self._family_started = bed.sim.now

    def finish(self, bed: "Testbed", family: str) -> None:
        """Stop observing after a family run; records its virtual-time span."""
        if self.registry is not None:
            self.registry.record_span(family, bed.sim.now - self._family_started)
            # Fast-path counters land here too, so ``--metrics`` dumps carry
            # them.  On a traced run they stay 0: attaching the bus is what
            # routes every call site back through the staged engine.
            if bed.sim.fastpath_events_saved:
                self.registry.inc("fastpath.events_saved", bed.sim.fastpath_events_saved)
            if bed.sim.fastpath_windows:
                self.registry.inc("fastpath.windows", bed.sim.fastpath_windows)
        if self._pcap is not None:
            self._pcap.close()
            self._pcap = None
        if self._bus is not None:
            # Closing record: the simulator's own counters, so a shipped
            # trace carries its run's engine accounting (fastpath counters
            # accrue only before attach — bring-up — since the bus itself
            # pins the staged engine).
            closing = {
                "events": bed.sim.events_processed,
                "fastpath_saved": bed.sim.fastpath_events_saved,
                "fastpath_windows": bed.sim.fastpath_windows,
            }
            if self.device is not None:
                closing["dev"] = self.device
            self._bus.emit("sim.stats", **closing)
            self._bus.detach()
            self._bus = None

    def close(self) -> None:
        """End the session: close the per-device JSONL streams."""
        if self._pcap is not None:  # defensive: finish() not reached
            self._pcap.close()
            self._pcap = None
        if self._jsonl is not None:
            self._jsonl.close()
