"""The trace bus: typed events from the simulator's publisher layers.

Publishers (the scheduler, the NAT engine, the forwarding plane, links and
fault injection) hold a reference to their :class:`~repro.netsim.sim
.Simulation` and emit through its ``bus`` attribute, guarded at every site::

    bus = self.sim.bus
    if bus is not None:
        bus.emit(NAT_BIND, dev=tag, proto=proto, ext_port=port)

``Simulation.bus`` is ``None`` by default, so the disabled path costs one
attribute load and an identity check — nothing is allocated, formatted or
buffered.  When a bus is attached, :meth:`TraceBus.emit` stamps the event
with the current virtual time and fans it out to every subscribed sink.

Event vocabulary
----------------

Kinds are short dotted strings (stable identifiers — they appear verbatim in
JSONL traces and metric names):

=============  ==============================================================
kind           meaning / notable fields
=============  ==============================================================
``pkt.rx``     gateway received a frame (``dev``, ``iface``, ``size``)
``pkt.tx``     gateway transmitted a forwarded packet (``dev``, ``dir``)
``pkt.drop``   gateway dropped a packet (``dev``, ``cause``)
``nat.bind``   binding created (``dev``, ``proto``, 5-tuple, ``ext_port``)
``nat.refresh``  binding idle timer re-armed (``dev``, ``proto``,
               ``ext_port``, ``state``, ``deadline``)
``nat.expire``  binding idled out (``dev``, ``proto``, ``ext_port``,
               ``lifetime``)
``nat.refused``  binding creation refused (``dev``, ``cause``:
               ``table_full`` | ``rate_limited``)
``nat.flush``  session table wiped by a crash (``dev``, ``count``)
``link.tx``    frame finished serializing onto a wire (``link``, ``size``,
               ``_frame`` — the live frame object, for the pcap sink)
``link.drop``  frame lost at/on a link (``link``, ``cause``: ``tail_drop`` |
               ``severed`` | ``flush`` | ``loss`` | ``corrupt``)
``link.dup``   impairment delivered a frame twice (``link``)
``timer.fire`` a live :class:`~repro.netsim.sim.Timer` fired (``cb``)
``fault.crash``  gateway power-cycled (``dev``, ``boot``)
``fault.boot``  gateway finished rebooting (``dev``)
``stun.request``  STUN server answered a binding request (``port``)
``stun.response``  STUN client received its mapped address (``port``)
``punch.tx``   hole-punch probe sent toward a reflexive endpoint (``side``)
``punch.rx``   hole-punch probe arrived through the NAT (``side``)
``relay.fallback``  direct punch failed; session fell back to the relay
``flow.start``  workload generator opened an application flow (``dev``,
               ``sub``, ``app``, ``flow``, ``bytes``)
``flow.complete``  an application flow finished its transfer (``dev``,
               ``sub``, ``app``, ``flow``, ``fct`` — completion time [s])
=============  ==============================================================

Field values are JSON-friendly scalars; the one exception is the
underscore-prefixed ``_frame`` on ``link.tx``, which carries the in-flight
frame object for sinks that serialize real wire bytes (pcap).  Text sinks
skip underscore-prefixed fields.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.netsim.sim import Simulation

# Packet-path events (gateway perspective).
PKT_RX = "pkt.rx"
PKT_TX = "pkt.tx"
PKT_DROP = "pkt.drop"

# NAT engine events.
NAT_BIND = "nat.bind"
NAT_REFRESH = "nat.refresh"
NAT_EXPIRE = "nat.expire"
NAT_REFUSED = "nat.refused"
NAT_FLUSH = "nat.flush"

# Link-layer events.
LINK_TX = "link.tx"
LINK_DROP = "link.drop"
LINK_DUP = "link.dup"

# Scheduler events.
TIMER_FIRE = "timer.fire"

# Fault-injection events.
FAULT_CRASH = "fault.crash"
FAULT_BOOT = "fault.boot"

# NAT-traversal events (STUN/hole-punch/relay experiments).
STUN_REQUEST = "stun.request"
STUN_RESPONSE = "stun.response"
PUNCH_TX = "punch.tx"
PUNCH_RX = "punch.rx"
RELAY_FALLBACK = "relay.fallback"

# Workload-generator flow lifecycle events (repro.workload).
FLOW_START = "flow.start"
FLOW_COMPLETE = "flow.complete"


class TraceBus:
    """Fan-out point between event publishers and sinks.

    One bus observes one :class:`~repro.netsim.sim.Simulation`; attaching is
    simply ``sim.bus = TraceBus(sim)`` (or :meth:`attach`).  Sinks are any
    object with ``handle(t, kind, fields)``; they are called synchronously,
    in subscription order, with the *same* fields dict — sinks must not
    mutate it.
    """

    __slots__ = ("sim", "_sinks")

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self._sinks: List[Any] = []

    @classmethod
    def attach(cls, sim: "Simulation") -> "TraceBus":
        """Create a bus and install it as ``sim.bus``."""
        bus = cls(sim)
        sim.bus = bus
        return bus

    def detach(self) -> None:
        """Remove this bus from its simulation (publishers go quiet again)."""
        if self.sim.bus is self:
            self.sim.bus = None

    def subscribe(self, sink: Any) -> Any:
        """Register a sink (``handle(t, kind, fields)``); returns it."""
        self._sinks.append(sink)
        return sink

    def emit(self, kind: str, **fields: Any) -> None:
        """Publish one event, stamped with the current virtual time.

        Emission is passive: it draws no randomness and schedules nothing,
        so an observed simulation computes exactly what an unobserved one
        does.
        """
        t = self.sim.now
        for sink in self._sinks:
            sink.handle(t, kind, fields)
