"""Flight-recorder observability for the simulated testbed.

The paper's conclusions rest on *watching the wire*: NAT rewrites, binding
expiries and queue drops are all things Hätönen et al. established by
inspecting packet traces.  This package gives the reproduction the same
flight-recorder layer — every interesting internal transition is published
as a typed event on a :class:`~repro.obs.bus.TraceBus`, and pluggable sinks
turn the stream into durable, shareable artifacts:

* :class:`~repro.obs.sinks.JsonlTraceSink` — one JSON-lines file per device,
  byte-identical regardless of ``jobs=N`` (the determinism contract of the
  sharded survey extends to its traces);
* :class:`~repro.obs.sinks.PcapSink` — per-link Ethernet captures in classic
  libpcap format, readable in Wireshark/tcpdump;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms plus virtual-time spans per measurement family, mergeable
  across survey shards and dumped into ``BENCH_*.json``.

The bus is **zero-overhead when disabled**: publishers guard every emission
with a single ``if sim.bus is not None`` check, no event objects are built,
and nothing subscribes.  Enabling observability never changes measurements —
emission is passive (no RNG draws, no scheduling), so a traced campaign is
field-for-field identical to an untraced one.

Typical use::

    from repro.core import SurveyRunner

    runner = SurveyRunner(jobs=4, trace_dir="out/trace",
                          pcap_dir="out/pcap", metrics=True)
    results = runner.run(["udp1", "tcp2"])
    results.metrics.as_dict()          # counters/histograms/spans
    # out/trace/<tag>.jsonl, out/pcap/<tag>.<family>.<role>.pcap

or, one level down, against a single testbed::

    from repro.obs import ObsConfig, ShardObserver

    observer = ShardObserver(ObsConfig(trace_dir="out"), device="je")
    observer.begin(bed, family="udp1")
    ...   # run a probe
    observer.finish(bed, family="udp1")
    observer.close()

Trace files are summarized by ``python -m repro trace`` (see
:mod:`repro.obs.summary`).
"""

from repro.obs.bus import (
    FAULT_BOOT,
    FAULT_CRASH,
    LINK_DROP,
    LINK_DUP,
    LINK_TX,
    NAT_BIND,
    NAT_EXPIRE,
    NAT_FLUSH,
    NAT_REFRESH,
    NAT_REFUSED,
    PKT_DROP,
    PKT_RX,
    PKT_TX,
    TIMER_FIRE,
    TraceBus,
)
from repro.obs.metrics import Histogram, MetricsRegistry, MetricsSink
from repro.obs.session import ObsConfig, ShardObserver
from repro.obs.sinks import JsonlTraceSink, PcapSink
from repro.obs.summary import render_summary, summarize_paths, summarize_trace

__all__ = [
    "TraceBus",
    "JsonlTraceSink",
    "PcapSink",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "ObsConfig",
    "ShardObserver",
    "summarize_trace",
    "summarize_paths",
    "render_summary",
    "PKT_RX",
    "PKT_TX",
    "PKT_DROP",
    "NAT_BIND",
    "NAT_REFRESH",
    "NAT_EXPIRE",
    "NAT_REFUSED",
    "NAT_FLUSH",
    "LINK_TX",
    "LINK_DROP",
    "LINK_DUP",
    "TIMER_FIRE",
    "FAULT_CRASH",
    "FAULT_BOOT",
]
