"""DHCP server and client services.

The testbed uses DHCP in both directions (Figure 1): the test server's
``dhcpd`` leases a distinct private block to each gateway's WAN port, and
each gateway's built-in DHCP server configures the test client's per-VLAN
interface.  The client mirrors the paper's modification: it installs
*interface-specific* configuration only (address, netmask, gateway, DNS) and
never a global default route.
"""

from __future__ import annotations

from dataclasses import dataclass
from ipaddress import IPv4Address, IPv4Network
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.netsim.addresses import MacAddress
from repro.packets.dhcp_codec import (
    DHCP_ACK,
    DHCP_DISCOVER,
    DHCP_NAK,
    DHCP_OFFER,
    DHCP_REQUEST,
    DhcpMessage,
)
from repro.protocols.stack import LIMITED_BROADCAST, UNSPECIFIED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.stack import Host

DHCP_SERVER_PORT = 67
DHCP_CLIENT_PORT = 68
DEFAULT_LEASE_SECONDS = 86400


@dataclass
class Lease:
    """One address lease."""

    mac: MacAddress
    address: IPv4Address
    expires_at: float


class DhcpServerService:
    """A DHCP server bound to one interface."""

    def __init__(
        self,
        host: "Host",
        iface_index: int,
        network: IPv4Network,
        server_ip: IPv4Address,
        router: Optional[IPv4Address] = None,
        dns_servers: Optional[List[IPv4Address]] = None,
        lease_seconds: int = DEFAULT_LEASE_SECONDS,
        first_offset: int = 100,
    ):
        self.host = host
        self.iface_index = iface_index
        self.network = network
        self.server_ip = server_ip
        self.router = router
        self.dns_servers = dns_servers or []
        self.lease_seconds = lease_seconds
        self.leases: Dict[MacAddress, Lease] = {}
        self._next_offset = first_offset
        self._socket = host.udp.bind(DHCP_SERVER_PORT, iface_index)
        self._socket.accept_unconfigured = False
        self._socket.on_receive = self._on_datagram

    def _allocate(self, mac: MacAddress) -> IPv4Address:
        lease = self.leases.get(mac)
        if lease is not None:
            lease.expires_at = self.host.sim.now + self.lease_seconds
            return lease.address
        address = IPv4Address(int(self.network.network_address) + self._next_offset)
        if address not in self.network:
            raise RuntimeError(f"DHCP pool exhausted on {self.network}")
        self._next_offset += 1
        self.leases[mac] = Lease(mac, address, self.host.sim.now + self.lease_seconds)
        return address

    def _on_datagram(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        try:
            message = DhcpMessage.from_bytes(payload)
        except ValueError:
            return
        if message.message_type == DHCP_DISCOVER:
            self._reply(message, DHCP_OFFER, self._allocate(message.client_mac))
        elif message.message_type == DHCP_REQUEST:
            requested = message.requested_ip or message.ciaddr
            lease = self.leases.get(message.client_mac)
            if lease is not None and requested == lease.address:
                self._reply(message, DHCP_ACK, lease.address)
            elif requested in self.network:
                self.leases[message.client_mac] = Lease(
                    message.client_mac, requested, self.host.sim.now + self.lease_seconds
                )
                self._reply(message, DHCP_ACK, requested)
            else:
                self._reply(message, DHCP_NAK, UNSPECIFIED)

    def _reply(self, request: DhcpMessage, message_type: int, yiaddr: IPv4Address) -> None:
        reply = DhcpMessage.reply(
            message_type,
            request.xid,
            request.client_mac,
            yiaddr,
            self.server_ip,
            self.network.netmask,
            self.router,
            self.dns_servers,
            self.lease_seconds,
        )
        # Reply unicast to the client's MAC; IP-level destination is the
        # offered address (the client stack accepts it while unconfigured).
        from repro.packets.ipv4 import PROTO_UDP, IPv4Packet
        from repro.packets.udp import UdpDatagram

        datagram = UdpDatagram(DHCP_SERVER_PORT, DHCP_CLIENT_PORT, reply.to_bytes())
        dst_ip = yiaddr if yiaddr != UNSPECIFIED else LIMITED_BROADCAST
        packet = IPv4Packet(self.server_ip, dst_ip, PROTO_UDP, datagram)
        self.host.send_ip_on_iface(packet, self.iface_index, dst_mac=request.client_mac)


class DhcpClientService:
    """A DHCP client bound to one interface.

    Runs DISCOVER/OFFER/REQUEST/ACK and then configures *only* the owning
    interface; ``on_configured`` fires when the lease is applied.
    """

    def __init__(
        self,
        host: "Host",
        iface_index: int,
        on_configured: Optional[Callable[["DhcpClientService"], None]] = None,
        retry_interval: float = 2.0,
        max_retries: int = 5,
    ):
        self.host = host
        self.iface_index = iface_index
        self.on_configured = on_configured
        self.retry_interval = retry_interval
        self.max_retries = max_retries
        self.configured = False
        self.offer: Optional[DhcpMessage] = None
        self.lease_time: Optional[int] = None
        self._xid = host.sim.rng.randrange(1, 1 << 32)
        self._retries = 0
        self._timer = host.sim.timer(self._on_timeout)
        self._socket = host.udp.bind(DHCP_CLIENT_PORT, iface_index)
        self._socket.accept_unconfigured = True
        self._socket.on_receive = self._on_datagram

    def start(self) -> None:
        self._send_discover()

    def stop(self) -> None:
        """Release the client socket and stop retrying."""
        self._timer.cancel()
        self._socket.close()

    def _broadcast(self, message: DhcpMessage) -> None:
        from repro.packets.ipv4 import PROTO_UDP, IPv4Packet
        from repro.packets.udp import UdpDatagram

        datagram = UdpDatagram(DHCP_CLIENT_PORT, DHCP_SERVER_PORT, message.to_bytes())
        packet = IPv4Packet(UNSPECIFIED, LIMITED_BROADCAST, PROTO_UDP, datagram)
        self.host.send_ip_on_iface(packet, self.iface_index)

    def _send_discover(self) -> None:
        iface = self.host.interfaces[self.iface_index]
        self._broadcast(DhcpMessage.discover(self._xid, iface.mac))
        self._timer.restart(self.retry_interval)

    def _on_timeout(self) -> None:
        if self.configured:
            return
        self._retries += 1
        if self._retries > self.max_retries:
            return  # give up silently; caller can inspect .configured
        if self.offer is None:
            self._send_discover()
        else:
            self._send_request(self.offer)

    def _send_request(self, offer: DhcpMessage) -> None:
        iface = self.host.interfaces[self.iface_index]
        server_id = offer.server_id or offer.siaddr
        self._broadcast(DhcpMessage.request(self._xid, iface.mac, offer.yiaddr, server_id))
        self._timer.restart(self.retry_interval)

    def _on_datagram(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        try:
            message = DhcpMessage.from_bytes(payload)
        except ValueError:
            return
        if message.xid != self._xid:
            return
        if message.message_type == DHCP_OFFER and self.offer is None:
            self.offer = message
            self._send_request(message)
        elif message.message_type == DHCP_ACK and not self.configured:
            self._apply(message)
        elif message.message_type == DHCP_NAK:
            self.offer = None
            self.configured = False
            self._send_discover()

    def _apply(self, ack: DhcpMessage) -> None:
        iface = self.host.interfaces[self.iface_index]
        mask = ack.subnet_mask or IPv4Address("255.255.255.0")
        network = IPv4Network(f"{ack.yiaddr}/{mask}", strict=False)
        iface.configure(ack.yiaddr, network, gateway_ip=ack.router)
        self.configured = True
        self.lease_time = ack.lease_time
        self.dns_servers = ack.dns_servers
        self._timer.cancel()
        if self.on_configured is not None:
            self.on_configured(self)
