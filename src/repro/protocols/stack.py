"""The host IP stack: interfaces, routing, neighbor resolution, demux.

Hosts are endpoints, not routers — a packet that arrives for an address the
host does not own is dropped, exactly like a Linux box with forwarding off.

Neighbor resolution is deliberately ARP-free: when the MAC for a next hop is
unknown the frame goes out to the Ethernet broadcast address (the VLAN switch
floods it within the VLAN), and hosts learn ``ip -> mac`` mappings from every
frame they receive.  After the first exchange all traffic is unicast.  This
models a converged LAN without simulating ARP round-trips, which are
irrelevant to every measurement in the study.
"""

from __future__ import annotations

from dataclasses import dataclass
from ipaddress import IPv4Address, IPv4Network
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.netsim.addresses import BROADCAST_MAC, MacAddress
from repro.netsim.node import Interface, Node
from repro.netsim.sim import Simulation
from repro.packets.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.packets.ipv4 import (
    PROTO_DCCP,
    PROTO_ICMP,
    PROTO_SCTP,
    PROTO_TCP,
    PROTO_UDP,
    IPv4Packet,
)

LIMITED_BROADCAST = IPv4Address("255.255.255.255")
UNSPECIFIED = IPv4Address("0.0.0.0")


@dataclass(frozen=True)
class Route:
    """One routing-table entry."""

    network: IPv4Network
    iface_index: int
    gateway: Optional[IPv4Address] = None

    def matches(self, dst: IPv4Address) -> bool:
        return dst in self.network


class Host(Node):
    """A multi-homed IP endpoint with UDP/TCP/ICMP/SCTP/DCCP stacks.

    The paper's test client has one interface per home gateway under test and
    uses *interface-specific routes only* (§3.1); :meth:`add_route` supports
    exactly that, and the most-specific matching route wins.
    """

    def __init__(self, sim: Simulation, name: str, mac_pool: Any):
        super().__init__(sim, name)
        self._mac_pool = mac_pool
        self.routes: List[Route] = []
        # Keyed by (iface index, int(ip)): the stdlib IPv4Address hash builds
        # a hex string per call, too slow for a per-frame dict.
        self.neighbors: Dict[Tuple[int, int], MacAddress] = {}
        # Observers see every IPv4 packet accepted by this host (like a
        # tcpdump on all interfaces); interceptors may consume a packet
        # before the stack handles it — the paper's "hijack" hook.
        self.ip_observers: List[Callable[[IPv4Packet, Interface], None]] = []
        self.interceptors: List[Callable[[IPv4Packet, Interface], bool]] = []
        self.validate_checksums = True
        #: Linux-style IP forwarding between this host's interfaces.  Off for
        #: endpoints; the hole-punching experiments switch it on for the test
        #: server so WAN VLANs can reach each other (peer-to-peer paths).
        self.ip_forwarding = False
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_forwarded = 0
        self.checksum_drops = 0

        # Protocol managers are imported lazily to avoid import cycles.
        from repro.protocols.udp import UdpManager
        from repro.protocols.tcp import TcpManager
        from repro.protocols.icmp_service import IcmpService
        from repro.protocols.sctp import SctpManager
        from repro.protocols.dccp import DccpManager

        self.udp = UdpManager(self)
        self.tcp = TcpManager(self)
        self.icmp = IcmpService(self)
        self.sctp = SctpManager(self)
        self.dccp = DccpManager(self)
        self._handlers: Dict[int, Callable[[IPv4Packet, Interface], None]] = {
            PROTO_UDP: self.udp.handle_packet,
            PROTO_TCP: self.tcp.handle_packet,
            PROTO_ICMP: self.icmp.handle_packet,
            PROTO_SCTP: self.sctp.handle_packet,
            PROTO_DCCP: self.dccp.handle_packet,
        }
        self._next_ident = 1

    # -- construction -----------------------------------------------------

    def new_interface(self) -> Interface:
        return self.add_interface(next(self._mac_pool))

    # -- routing ------------------------------------------------------------

    def add_route(self, network: IPv4Network, iface_index: int, gateway: Optional[IPv4Address] = None) -> None:
        self.routes.append(Route(network, iface_index, gateway))

    def add_default_route(self, iface_index: int, gateway: IPv4Address) -> None:
        self.add_route(IPv4Network("0.0.0.0/0"), iface_index, gateway)

    def clear_routes(self, iface_index: Optional[int] = None) -> None:
        if iface_index is None:
            self.routes.clear()
            return
        self.routes = [route for route in self.routes if route.iface_index != iface_index]

    def lookup_route(self, dst: IPv4Address) -> Optional[Route]:
        """Longest-prefix match, including connected networks."""
        best: Optional[Route] = None
        best_len = -1
        for iface in self.interfaces:
            if iface.network is not None and dst in iface.network:
                if iface.network.prefixlen > best_len:
                    best = Route(iface.network, iface.index, None)
                    best_len = iface.network.prefixlen
        for route in self.routes:
            if route.matches(dst) and route.network.prefixlen > best_len:
                best = route
                best_len = route.network.prefixlen
        return best

    def source_ip_for(self, dst: IPv4Address) -> Optional[IPv4Address]:
        """The source address the stack would use toward ``dst``."""
        route = self.lookup_route(dst)
        if route is None:
            return None
        return self.interfaces[route.iface_index].ip

    # -- transmit ------------------------------------------------------------

    def next_ident(self) -> int:
        ident = self._next_ident
        self._next_ident = (self._next_ident + 1) & 0xFFFF
        return ident

    def send_ip(self, packet: IPv4Packet) -> bool:
        """Route and transmit ``packet``; returns False when unroutable."""
        if packet.dst == LIMITED_BROADCAST:
            raise ValueError("use send_ip_on_iface for limited broadcasts")
        route = self.lookup_route(packet.dst)
        if route is None:
            return False
        next_hop = route.gateway if route.gateway is not None else packet.dst
        return self.send_ip_on_iface(packet, route.iface_index, next_hop=next_hop)

    def send_ip_routed(self, packet: IPv4Packet, iface_index: Optional[int] = None) -> bool:
        """Transmit, optionally forcing a specific interface.

        With an interface pinned (the test client's per-VLAN sockets), an
        off-link destination goes to that interface's DHCP-learned gateway —
        the "interface-specific routes" configuration of §3.1.
        """
        if iface_index is None:
            return self.send_ip(packet)
        iface = self.interfaces[iface_index]
        next_hop = packet.dst
        if iface.gateway_ip is not None and (iface.network is None or packet.dst not in iface.network):
            next_hop = iface.gateway_ip
        return self.send_ip_on_iface(packet, iface_index, next_hop=next_hop)

    def send_ip_on_iface(
        self,
        packet: IPv4Packet,
        iface_index: int,
        next_hop: Optional[IPv4Address] = None,
        dst_mac: Optional[MacAddress] = None,
    ) -> bool:
        """Transmit on a specific interface (used by DHCP and the testbed)."""
        iface = self.interfaces[iface_index]
        if packet.identification == 0:
            packet.identification = self.next_ident()
        if packet.header_checksum is None:
            packet.fill_checksums()
        if dst_mac is None:
            if next_hop is None or packet.dst == LIMITED_BROADCAST:
                dst_mac = BROADCAST_MAC
            else:
                dst_mac = self.neighbors.get((iface_index, next_hop._ip), BROADCAST_MAC)
        frame = EthernetFrame(dst_mac, iface.mac, packet, ETHERTYPE_IPV4)
        self.packets_sent += 1
        iface.transmit(frame)
        return True

    # -- receive --------------------------------------------------------------

    def receive_frame(self, iface: Interface, frame: Any) -> None:
        if frame.ethertype != ETHERTYPE_IPV4:
            return
        dst_mac = frame.dst._value  # inlined is_broadcast/is_multicast checks
        if dst_mac != iface.mac._value and dst_mac != 0xFFFFFFFFFFFF and not (dst_mac >> 40) & 1:
            return
        packet = frame.payload
        if not isinstance(packet, IPv4Packet):
            return
        # Learn the sender's L2 address for future unicasts.
        if packet.src != UNSPECIFIED:
            self.neighbors[(iface.index, packet.src._ip)] = frame.src
        if not self._addressed_to_us(packet.dst, iface):
            if self.ip_forwarding:
                self._forward(packet, iface)
            return
        self.deliver_local(packet, iface)

    def _forward(self, packet: IPv4Packet, in_iface: Interface) -> None:
        """Route a transit packet out another interface (plain IP router)."""
        route = self.lookup_route(packet.dst)
        if route is None:
            return
        if packet.ttl <= 1:
            return  # a router would emit Time Exceeded; transit probes don't need it
        out_iface = self.interfaces[route.iface_index]
        if packet.wire_size() > out_iface.mtu:
            if packet.dont_fragment:
                self._send_frag_needed(packet, in_iface, out_iface.mtu)
            # Without DF a real router would fragment; our stacks always set
            # DF (as Linux does for TCP), so oversized DF-less packets drop.
            return
        from repro.packets.clone import clone_packet

        forwarded = clone_packet(packet)
        forwarded.ttl -= 1
        forwarded.header_checksum = forwarded.compute_header_checksum()
        next_hop = route.gateway if route.gateway is not None else forwarded.dst
        self.packets_forwarded += 1
        self.send_ip_on_iface(forwarded, route.iface_index, next_hop=next_hop)

    def _send_frag_needed(self, offending: IPv4Packet, in_iface: Interface, mtu: int) -> None:
        """RFC 1191: Destination Unreachable / Fragmentation Needed."""
        from repro.packets.icmp import ICMP_DEST_UNREACH, UNREACH_FRAG_NEEDED, IcmpMessage

        if in_iface.ip is None:
            return
        error = IcmpMessage.error(ICMP_DEST_UNREACH, UNREACH_FRAG_NEEDED, offending, mtu=mtu)
        reply = IPv4Packet(in_iface.ip, offending.src, PROTO_ICMP, error)
        reply.fill_checksums()
        self.send_ip(reply)

    def deliver_local(self, packet: IPv4Packet, iface: Interface) -> None:
        """Run a packet through this host's own stack (observers + demux)."""
        self.packets_received += 1
        if self.ip_observers:  # copied so observers may deregister mid-walk
            for observer in list(self.ip_observers):
                observer(packet, iface)
        if self.interceptors:
            for interceptor in list(self.interceptors):
                if interceptor(packet, iface):
                    return
        handler = self._handlers.get(packet.protocol)
        if handler is None:
            self.icmp.protocol_unreachable(packet, iface)
            return
        handler(packet, iface)

    def _addressed_to_us(self, dst: IPv4Address, iface: Interface) -> bool:
        if dst == LIMITED_BROADCAST:
            return True
        if iface.network is not None and dst == iface.network.broadcast_address:
            return True
        # Weak host model (Linux default): any local address on any
        # interface is "us" — the multi-VLAN test server depends on it.
        for own in self.interfaces:
            if own.ip is not None and dst == own.ip:
                return True
        # DHCP clients accept unicasts to their about-to-be address.
        return iface.ip is None and dst != UNSPECIFIED and self.udp.accepts_unconfigured(iface)

    # -- convenience ------------------------------------------------------------

    def install_intercept(self, fn: Callable[[IPv4Packet, Interface], bool]) -> Callable[[], None]:
        """Install a packet interceptor; returns a removal callback."""
        self.interceptors.append(fn)

        def remove() -> None:
            if fn in self.interceptors:
                self.interceptors.remove(fn)

        return remove

    def observe_ip(self, fn: Callable[[IPv4Packet, Interface], None]) -> Callable[[], None]:
        """Install a packet observer; returns a removal callback."""
        self.ip_observers.append(fn)

        def remove() -> None:
            if fn in self.ip_observers:
                self.ip_observers.remove(fn)

        return remove
