"""TCP, as the paper configured it.

A byte-stream TCP with the three-way handshake, cumulative ACKs, delayed
ACKs, Reno congestion control (slow start, congestion avoidance, fast
retransmit/recovery), an RFC 6298 retransmission timer, graceful FIN
teardown, RST handling, and optional keepalive probes.

§3.2.2 of the paper pins the endpoint configuration: Linux 2.6.26, Reno,
with SACK, timestamps, window scaling, F-RTO, D-SACK and CBI all *disabled*.
Those are the defaults here: segments carry only an MSS option on SYNs and
the advertised window is a flat (unscaled) 64 KB.  Window scaling can be
re-enabled per connection for the ablation benches.

The implementation is callback-driven; applications set ``on_established``,
``on_data`` and ``on_close`` and call :meth:`TcpConnection.send` /
:meth:`TcpConnection.close`.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.netsim.node import Interface
from repro.packets.icmp import IcmpMessage
from repro.packets.ipv4 import PROTO_TCP, IPv4Packet
from repro.packets.tcp import (
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TcpOption,
    TcpSegment,
)
from repro.protocols.ports import EphemeralPortAllocator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.stack import Host

TCP_DEFAULT_MSS = 1460
DEFAULT_WINDOW = 65535
INITIAL_CWND_SEGMENTS = 3  # Linux 2.6.26-era initial window (RFC 3390)
MIN_RTO = 0.2  # Linux's 200 ms floor
MAX_RTO = 60.0
INITIAL_RTO = 1.0
DEFAULT_SYN_RETRIES = 4
DEFAULT_DATA_RETRIES = 8
DELACK_TIMEOUT = 0.04  # Linux's 40 ms delayed-ACK timer
TIME_WAIT_SECONDS = 1.0  # shortened 2*MSL; configurable per connection

_SEQ_MASK = 0xFFFFFFFF


def seq_add(seq: int, delta: int) -> int:
    return (seq + delta) & _SEQ_MASK


def seq_sub(a: int, b: int) -> int:
    """``a - b`` in sequence space, as a small signed integer."""
    diff = (a - b) & _SEQ_MASK
    if diff > 0x7FFFFFFF:
        diff -= 0x100000000
    return diff


def seq_lt(a: int, b: int) -> bool:
    return seq_sub(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    return seq_sub(a, b) <= 0


# Connection lifecycle states (RFC 793 names).
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
CLOSING = "CLOSING"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"


class TcpListener:
    """A passive socket: accepts SYNs on a port."""

    def __init__(self, manager: "TcpManager", port: int, iface_index: Optional[int]):
        self.manager = manager
        self.port = port
        self.iface_index = iface_index
        self.on_accept: Optional[Callable[["TcpConnection"], None]] = None
        self.closed = False
        self.accepted = 0
        # Options inherited by accepted connections.
        self.use_window_scaling = False
        self.rcv_wnd = DEFAULT_WINDOW

    def close(self) -> None:
        self.closed = True
        self.manager.listeners.pop(self.port, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TcpListener {self.manager.host.name}:{self.port}>"


class TcpConnection:
    """One TCP connection endpoint."""

    __slots__ = (
        "manager",
        "host",
        "sim",
        "local_ip",
        "local_port",
        "remote_ip",
        "remote_port",
        "iface_index",
        "state",
        "mss",
        "use_window_scaling",
        "rcv_wnd",
        "wscale_shift",
        "iss",
        "snd_una",
        "snd_nxt",
        "peer_window",
        "peer_wscale",
        "_send_buffer",
        "_fin_pending",
        "_fin_sent",
        "_fin_seq",
        "irs",
        "rcv_nxt",
        "_ooo",
        "_segs_since_ack",
        "cwnd",
        "ssthresh",
        "_dupacks",
        "_in_fast_recovery",
        "_recover",
        "srtt",
        "rttvar",
        "rto",
        "_rtt_seq",
        "_rtt_time",
        "_rtx_timer",
        "_delack_timer",
        "_rtx_deadline",
        "_delack_deadline",
        "_keepalive_timer",
        "_time_wait_timer",
        "keepalive_interval",
        "time_wait_seconds",
        "max_syn_retries",
        "max_data_retries",
        "_retries",
        "on_established",
        "on_data",
        "on_close",
        "on_icmp_error",
        "pmtu_reductions",
        "bytes_sent",
        "bytes_received",
        "segments_sent",
        "segments_received",
        "retransmitted_segments",
        "first_data_rx",
        "last_data_rx",
    )

    def __init__(
        self,
        manager: "TcpManager",
        local_ip: IPv4Address,
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
        iface_index: Optional[int] = None,
    ):
        self.manager = manager
        self.host = manager.host
        self.sim = manager.host.sim
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.iface_index = iface_index

        self.state = CLOSED
        self.mss = TCP_DEFAULT_MSS
        self.use_window_scaling = False
        self.rcv_wnd = DEFAULT_WINDOW
        self.wscale_shift = 7  # only used when window scaling is enabled

        # Send side.
        self.iss = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.peer_window = DEFAULT_WINDOW
        self.peer_wscale = 0
        self._send_buffer = bytearray()  # bytes from snd_una onward (unacked + unsent)
        self._fin_pending = False
        self._fin_sent = False
        self._fin_seq: Optional[int] = None

        # Receive side.
        self.irs = 0
        self.rcv_nxt = 0
        self._ooo: Dict[int, bytes] = {}
        self._segs_since_ack = 0

        # Congestion control (Reno, byte-counted).
        self.cwnd = INITIAL_CWND_SEGMENTS * self.mss
        self.ssthresh = 1 << 30
        self._dupacks = 0
        self._in_fast_recovery = False
        self._recover = 0

        # RTO state (RFC 6298).
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self._rtt_seq: Optional[int] = None
        self._rtt_time = 0.0

        # Timers.  Retransmission and delayed-ACK re-arm on (nearly) every
        # segment, so both run through a lazy deadline field: the hot path
        # records the exact instant a ``restart`` would have armed and the
        # already-queued (stale) heap entry chases it when it fires.  The
        # wrapper callbacks below are the chase logic.
        self._rtx_timer = self.sim.timer(self._rtx_fire)
        self._delack_timer = self.sim.timer(self._delack_fire)
        self._rtx_deadline: Optional[float] = None
        self._delack_deadline: Optional[float] = None
        self._keepalive_timer = self.sim.timer(self._on_keepalive)
        self._time_wait_timer = self.sim.timer(self._on_time_wait_done)
        self.keepalive_interval: Optional[float] = None
        self.time_wait_seconds = TIME_WAIT_SECONDS

        # Limits.
        self.max_syn_retries = DEFAULT_SYN_RETRIES
        self.max_data_retries = DEFAULT_DATA_RETRIES
        self._retries = 0

        # Callbacks.
        self.on_established: Optional[Callable[["TcpConnection"], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[str], None]] = None
        self.on_icmp_error: Optional[Callable[[IcmpMessage, IPv4Packet], None]] = None

        # Counters.
        self.pmtu_reductions = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmitted_segments = 0
        self.first_data_rx: Optional[float] = None
        self.last_data_rx: Optional[float] = None

    # -- public API ---------------------------------------------------------

    @property
    def established(self) -> bool:
        return self.state == ESTABLISHED

    @property
    def key(self) -> Tuple[IPv4Address, int, IPv4Address, int]:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    def open_active(self) -> None:
        """Send the SYN (called by :meth:`TcpManager.connect`)."""
        self.iss = self.sim.rng.randrange(0, 1 << 32)
        self.snd_una = self.iss
        self.snd_nxt = seq_add(self.iss, 1)
        self.state = SYN_SENT
        self._retries = 0
        self._send_syn()

    def send(self, data: bytes) -> None:
        """Queue application bytes for transmission."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT, SYN_SENT, SYN_RCVD):
            raise RuntimeError(f"cannot send in state {self.state}")
        if self._fin_pending or self._fin_sent:
            raise RuntimeError("cannot send after close()")
        self._send_buffer += data
        if self.state in (ESTABLISHED, CLOSE_WAIT):
            self._try_output()

    def close(self) -> None:
        """Graceful close: FIN goes out once all queued data is sent."""
        if self.state in (CLOSED, TIME_WAIT, LAST_ACK, CLOSING, FIN_WAIT_1, FIN_WAIT_2):
            return
        if self.state in (SYN_SENT,):
            self._teardown("closed")
            return
        self._fin_pending = True
        if self.state == ESTABLISHED:
            self.state = FIN_WAIT_1
        elif self.state == CLOSE_WAIT:
            self.state = LAST_ACK
        self._try_output()

    def abort(self) -> None:
        """Hard close: emit a RST and drop all state."""
        if self.state not in (CLOSED, TIME_WAIT):
            self._emit(TcpSegment(self.local_port, self.remote_port, seq=self.snd_nxt, flags=TCP_RST | TCP_ACK, ack=self.rcv_nxt))
        self._teardown("aborted")

    def enable_keepalive(self, interval: float) -> None:
        """Send keepalive probes (seq = snd_una-1, zero length) periodically."""
        if interval <= 0:
            raise ValueError(f"keepalive interval must be positive, got {interval}")
        self.keepalive_interval = interval
        self._keepalive_timer.start(interval)

    def flight_size(self) -> int:
        return seq_sub(self.snd_nxt, self.snd_una)

    def unsent_bytes(self) -> int:
        sent = seq_sub(self.snd_nxt, self.snd_una)
        if self._fin_sent:
            sent -= 1
        return len(self._send_buffer) - sent

    # -- segment construction -------------------------------------------------

    def _peer_window_bytes(self) -> int:
        return self.peer_window << self.peer_wscale

    def _advertised_window(self) -> int:
        if self.use_window_scaling:
            return min(self.rcv_wnd >> self.wscale_shift, 0xFFFF)
        return min(self.rcv_wnd, 0xFFFF)

    def _emit(self, segment: TcpSegment) -> None:
        packet = IPv4Packet(self.local_ip, self.remote_ip, PROTO_TCP, segment)
        packet.fill_checksums()
        self.segments_sent += 1
        self.host.send_ip_routed(packet, self.iface_index)

    def _send_syn(self) -> None:
        options = [TcpOption.mss(self.mss)]
        if self.use_window_scaling:
            options.append(TcpOption.window_scale(self.wscale_shift))
        flags = TCP_SYN if self.state == SYN_SENT else TCP_SYN | TCP_ACK
        segment = TcpSegment(
            self.local_port,
            self.remote_port,
            seq=self.iss,
            ack=self.rcv_nxt if flags & TCP_ACK else 0,
            flags=flags,
            window=self._advertised_window(),
            options=options,
        )
        self._emit(segment)
        self._rtx_restart()

    def _send_ack(self) -> None:
        self._delack_cancel()
        self._segs_since_ack = 0
        self._emit(
            TcpSegment(
                self.local_port,
                self.remote_port,
                seq=self.snd_nxt,
                ack=self.rcv_nxt,
                flags=TCP_ACK,
                window=self._advertised_window(),
            )
        )

    def _send_data_segment(self, seq: int, payload: bytes, push: bool) -> None:
        flags = TCP_ACK | (TCP_PSH if push else 0)
        self._emit(
            TcpSegment(
                self.local_port,
                self.remote_port,
                seq=seq,
                ack=self.rcv_nxt,
                flags=flags,
                window=self._advertised_window(),
                payload=payload,
            )
        )

    def _send_fin(self) -> None:
        self._emit(
            TcpSegment(
                self.local_port,
                self.remote_port,
                seq=self._fin_seq,
                ack=self.rcv_nxt,
                flags=TCP_FIN | TCP_ACK,
                window=self._advertised_window(),
            )
        )

    # -- output engine --------------------------------------------------------

    def _try_output(self) -> None:
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, LAST_ACK, CLOSING):
            return
        window = min(self.cwnd, self._peer_window_bytes())
        sent_something = False
        while True:
            flight = self.flight_size()
            offset = seq_sub(self.snd_nxt, self.snd_una)
            if self._fin_sent:
                break
            available = len(self._send_buffer) - offset
            if available <= 0:
                break
            room = window - flight
            if room <= 0:
                break
            size = min(self.mss, available, room)
            if size <= 0:
                break
            payload = bytes(self._send_buffer[offset : offset + size])
            push = offset + size >= len(self._send_buffer)
            seq = self.snd_nxt
            self.snd_nxt = seq_add(self.snd_nxt, size)
            self.bytes_sent += size
            if self._rtt_seq is None:
                self._rtt_seq = seq_add(seq, size)
                self._rtt_time = self.sim.now
            self._send_data_segment(seq, payload, push)
            sent_something = True
        if (
            self._fin_pending
            and not self._fin_sent
            and seq_sub(self.snd_nxt, self.snd_una) == len(self._send_buffer)
        ):
            self._fin_seq = self.snd_nxt
            self.snd_nxt = seq_add(self.snd_nxt, 1)
            self._fin_sent = True
            self._send_fin()
            sent_something = True
        if sent_something or self.flight_size() > 0:
            if self._rtx_deadline is None:
                self._rtx_restart()

    # -- timers ------------------------------------------------------------------

    def _rtx_restart(self) -> None:
        """``_rtx_timer.restart(self.rto)``, with the heap push elided when
        an earlier wake-up is already queued (the common per-ACK case)."""
        sim = self.sim
        target = sim.now + self.rto
        self._rtx_deadline = target
        timer = self._rtx_timer
        if sim.fastpath and sim.bus is None and timer.armed and timer.deadline <= target:
            sim.fastpath_events_saved += 1
            return
        timer.restart(self.rto)

    def _rtx_cancel(self) -> None:
        self._rtx_deadline = None
        sim = self.sim
        if sim.fastpath and sim.bus is None:
            return  # the queued entry no-ops on the cleared deadline
        self._rtx_timer.cancel()

    def _rtx_fire(self) -> None:
        target = self._rtx_deadline
        if target is None:
            return  # lazily cancelled
        if target > self.sim.now:
            self._rtx_timer.start_at(target)  # chase the deferred deadline
            return
        self._rtx_deadline = None
        self._on_rtx_timeout()

    def _delack_arm(self) -> None:
        sim = self.sim
        target = sim.now + DELACK_TIMEOUT
        self._delack_deadline = target
        timer = self._delack_timer
        if sim.fastpath and sim.bus is None and timer.armed and timer.deadline <= target:
            sim.fastpath_events_saved += 1
            return
        timer.restart(DELACK_TIMEOUT)

    def _delack_cancel(self) -> None:
        self._delack_deadline = None
        sim = self.sim
        if sim.fastpath and sim.bus is None:
            return
        self._delack_timer.cancel()

    def _delack_fire(self) -> None:
        target = self._delack_deadline
        if target is None:
            return
        if target > self.sim.now:
            self._delack_timer.start_at(target)
            return
        self._delack_deadline = None
        self._send_ack()

    def _on_rtx_timeout(self) -> None:
        if self.state == CLOSED:
            return
        self._retries += 1
        if self.state == SYN_SENT:
            if self._retries > self.max_syn_retries:
                self._teardown("timeout")
                return
            self.rto = min(self.rto * 2, MAX_RTO)
            self._send_syn()
            return
        if self.state == SYN_RCVD:
            if self._retries > self.max_syn_retries:
                self._teardown("timeout")
                return
            self.rto = min(self.rto * 2, MAX_RTO)
            self._send_syn()
            return
        if self.flight_size() == 0:
            return
        if self._retries > self.max_data_retries:
            self._teardown("timeout")
            return
        # RFC 5681: timeout collapses the window.
        self.ssthresh = max(self.flight_size() // 2, 2 * self.mss)
        self.cwnd = self.mss
        self._dupacks = 0
        self._in_fast_recovery = False
        self._rtt_seq = None  # Karn: no sampling across retransmits
        self.rto = min(self.rto * 2, MAX_RTO)
        if self._fin_sent:
            self._retransmit_head()
            self._rtx_restart()
            return
        # Classic Reno RTO recovery (go-back-N): everything in flight is
        # presumed lost.  Rewind so slow start governs the resend and every
        # returning ACK pulls the recovery forward — without the rewind the
        # phantom flight blocks all new output, so no RTT samples arrive,
        # the RTO pins at its ceiling, and a lost train drains at one
        # segment per RTO.
        self.retransmitted_segments += 1
        self.snd_nxt = self.snd_una
        self._try_output()
        self._rtx_restart()

    def _retransmit_head(self) -> None:
        self.retransmitted_segments += 1
        if self._fin_sent and seq_sub(self._fin_seq, self.snd_una) == len(self._send_buffer) == 0:
            self._send_fin()
            return
        if not self._send_buffer:
            if self._fin_sent:
                self._send_fin()
            return
        size = min(self.mss, len(self._send_buffer))
        payload = bytes(self._send_buffer[:size])
        self._send_data_segment(self.snd_una, payload, push=size >= len(self._send_buffer))

    def handle_frag_needed(self, icmp: IcmpMessage) -> None:
        """Path MTU discovery (RFC 1191): shrink the MSS and resend.

        Without this — or when a NAT fails to translate the Frag Needed
        error (Table 2) — the connection black-holes, which is the §3.2.3
        failure mode the ICMP tests grade devices on.
        """
        from repro.packets.icmp import ICMP_DEST_UNREACH, UNREACH_FRAG_NEEDED

        if icmp.icmp_type != ICMP_DEST_UNREACH or icmp.code != UNREACH_FRAG_NEEDED:
            return
        # IP(20) + TCP(20) headers; RFC 1191's fallback when mtu is absent.
        new_mss = max((icmp.mtu or 576) - 40, 536 - 40)
        if new_mss >= self.mss:
            return
        self.mss = new_mss
        self.cwnd = max(self.cwnd, 2 * self.mss)
        self.pmtu_reductions += 1
        # Everything in flight above the tight link's MTU was dropped there;
        # rewind and resend it in right-sized segments (not a congestion
        # event, so the window is left alone).
        if self.flight_size() > 0 and not self._fin_sent:
            self.snd_nxt = self.snd_una
            self._dupacks = 0
            self._in_fast_recovery = False
            self._rtt_seq = None
            self._try_output()
            self._rtx_restart()

    def _on_keepalive(self) -> None:
        if self.state != ESTABLISHED or self.keepalive_interval is None:
            return
        # A keepalive probe: one garbage-free segment below snd_una.
        self._emit(
            TcpSegment(
                self.local_port,
                self.remote_port,
                seq=seq_add(self.snd_una, -1 & _SEQ_MASK),
                ack=self.rcv_nxt,
                flags=TCP_ACK,
                window=self._advertised_window(),
            )
        )
        self._keepalive_timer.start(self.keepalive_interval)

    def _on_time_wait_done(self) -> None:
        self._teardown("closed")

    # -- input ----------------------------------------------------------------------

    def segment_arrives(self, packet: IPv4Packet, segment: TcpSegment) -> None:
        self.segments_received += 1
        if self.state == SYN_SENT:
            self._handle_syn_sent(segment)
            return
        if self.state == CLOSED:
            return
        if segment.rst:
            if self._rst_acceptable(segment):
                self._teardown("reset")
            return
        if segment.syn and self.state == SYN_RCVD and not segment.ack_flag:
            # Our SYN|ACK was lost; answer the retransmitted SYN.
            self._send_syn()
            return
        if segment.ack_flag:
            self._process_ack(segment)
        if self.state == CLOSED:
            return
        if segment.payload or segment.fin:
            self._process_payload(packet, segment)
        elif seq_lt(segment.seq, self.rcv_nxt):
            # An empty out-of-window segment — a keepalive probe (RFC 1122
            # §4.2.3.6) — must be answered with an ACK.
            self._send_ack()
        if self.state in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, LAST_ACK, CLOSING):
            self._try_output()

    def _rst_acceptable(self, segment: TcpSegment) -> bool:
        # RFC 793 check: RST sequence must fall in the receive window.
        if self.state in (SYN_SENT, SYN_RCVD):
            return True
        return seq_le(self.rcv_nxt, segment.seq) and seq_lt(segment.seq, seq_add(self.rcv_nxt, max(self.rcv_wnd, 1)))

    def _handle_syn_sent(self, segment: TcpSegment) -> None:
        if segment.rst:
            if segment.ack_flag and segment.ack == self.snd_nxt:
                self._teardown("refused")
            return
        if segment.syn and not segment.ack_flag:
            # Simultaneous open (RFC 793 §3.4): our SYN crossed the peer's.
            # Move to SYN_RCVD and answer with SYN|ACK; the peer's SYN|ACK
            # (or ACK) completes the handshake.  This is the mechanism TCP
            # hole punching rides on.
            self.irs = segment.seq
            self.rcv_nxt = seq_add(segment.seq, 1)
            self.peer_window = segment.window
            self._apply_syn_options(segment)
            self.state = SYN_RCVD
            self._retries = 0
            self._send_syn()
            return
        if not (segment.syn and segment.ack_flag):
            return
        if segment.ack != self.snd_nxt:
            return
        self.irs = segment.seq
        self.rcv_nxt = seq_add(segment.seq, 1)
        self.snd_una = segment.ack
        self.peer_window = segment.window
        self._apply_syn_options(segment)
        self.state = ESTABLISHED
        self._retries = 0
        self._rtx_cancel()
        self._send_ack()
        if self.on_established is not None:
            self.on_established(self)
        self._try_output()

    def _apply_syn_options(self, segment: TcpSegment) -> None:
        from repro.packets.tcp import TCPOPT_MSS, TCPOPT_WSCALE

        peer_allows_wscale = False
        for option in segment.options:
            if option.kind == TCPOPT_MSS and len(option.data) == 2:
                self.mss = min(self.mss, int.from_bytes(option.data, "big"))
            elif option.kind == TCPOPT_WSCALE and len(option.data) == 1:
                peer_allows_wscale = True
                if self.use_window_scaling:
                    self.peer_wscale = option.data[0]
        if not peer_allows_wscale:
            self.peer_wscale = 0
        self.cwnd = INITIAL_CWND_SEGMENTS * self.mss

    def handle_inbound_syn(self, packet: IPv4Packet, segment: TcpSegment) -> None:
        """Initialize from a SYN received by a listener (passive open)."""
        self.irs = segment.seq
        self.rcv_nxt = seq_add(segment.seq, 1)
        self.peer_window = segment.window
        self.iss = self.sim.rng.randrange(0, 1 << 32)
        self.snd_una = self.iss
        self.snd_nxt = seq_add(self.iss, 1)
        self._apply_syn_options(segment)
        self.state = SYN_RCVD
        self._send_syn()

    def _process_ack(self, segment: TcpSegment) -> None:
        ack = segment.ack
        if self.state == SYN_RCVD:
            if ack == self.snd_nxt:
                self.state = ESTABLISHED
                self.snd_una = ack
                self._retries = 0
                self._rtx_cancel()
                self.peer_window = segment.window
                listener = self.manager.listeners.get(self.local_port)
                if listener is not None:
                    listener.accepted += 1
                    if listener.on_accept is not None:
                        listener.on_accept(self)
                if self.on_established is not None:
                    self.on_established(self)
            return
        if seq_lt(self.snd_nxt, ack):
            if seq_sub(ack, self.snd_una) <= len(self._send_buffer):
                # The data is ours — sent before an RTO rewind pulled
                # snd_nxt back (go-back-N keeps no snd_max).  Accept the
                # ACK and pull snd_nxt forward past the covered bytes.
                self.snd_nxt = ack
            else:
                # ACK for data we never sent; ignore.
                return
        self.peer_window = segment.window
        if seq_lt(self.snd_una, ack):
            acked = seq_sub(ack, self.snd_una)
            self._advance_snd_una(ack, acked)
        elif ack == self.snd_una and self.flight_size() > 0 and not segment.payload:
            self._on_dupack()

    def _advance_snd_una(self, ack: int, acked: int) -> None:
        # RTT sample (Karn's algorithm: only for never-retransmitted data).
        if self._rtt_seq is not None and seq_le(self._rtt_seq, ack):
            self._update_rto(self.sim.now - self._rtt_time)
            self._rtt_seq = None
        fin_acked = self._fin_sent and seq_sub(ack, self._fin_seq) >= 1
        data_acked = acked - (1 if fin_acked else 0)
        if data_acked > 0:
            del self._send_buffer[:data_acked]
        self.snd_una = ack
        self._retries = 0
        # Congestion control.
        if self._in_fast_recovery:
            if seq_lt(ack, self._recover):
                # Partial ACK (NewReno): retransmit the next hole.
                self._retransmit_head()
                self.cwnd = max(self.cwnd - data_acked + self.mss, self.mss)
            else:
                self.cwnd = self.ssthresh
                self._in_fast_recovery = False
                self._dupacks = 0
        else:
            self._dupacks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += min(data_acked, self.mss)
            else:
                self.cwnd += max(self.mss * self.mss // self.cwnd, 1)
        if self.flight_size() == 0:
            self._rtx_cancel()
        else:
            self._rtx_restart()
        # FIN progress.
        if fin_acked:
            if self.state == FIN_WAIT_1:
                self.state = FIN_WAIT_2
            elif self.state == CLOSING:
                self._enter_time_wait()
            elif self.state == LAST_ACK:
                self._teardown("closed")

    def _on_dupack(self) -> None:
        self._dupacks += 1
        if self._in_fast_recovery:
            self.cwnd += self.mss
            self._try_output()
            return
        if self._dupacks == 3:
            self.ssthresh = max(self.flight_size() // 2, 2 * self.mss)
            self.cwnd = self.ssthresh + 3 * self.mss
            self._in_fast_recovery = True
            self._recover = self.snd_nxt
            self._rtt_seq = None
            self._retransmit_head()

    def _update_rto(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4 * self.rttvar, MIN_RTO), MAX_RTO)

    def _process_payload(self, packet: IPv4Packet, segment: TcpSegment) -> None:
        seq = segment.seq
        payload = segment.payload
        if payload:
            if seq == self.rcv_nxt:
                self._deliver(payload)
                self._drain_ooo()
                self._segs_since_ack += 1
                if self._ooo or self._segs_since_ack >= 2 or segment.flags & TCP_PSH:
                    self._send_ack()
                elif self._delack_deadline is None:
                    self._delack_arm()
            elif seq_lt(self.rcv_nxt, seq):
                if len(self._ooo) < 256:
                    self._ooo.setdefault(seq, payload)
                self._send_ack()  # dup ACK
            else:
                overlap = seq_sub(self.rcv_nxt, seq)
                if overlap < len(payload):
                    self._deliver(payload[overlap:])
                    self._drain_ooo()
                self._send_ack()
        fin_seq = seq_add(seq, len(payload))
        if segment.fin and fin_seq == self.rcv_nxt:
            self.rcv_nxt = seq_add(self.rcv_nxt, 1)
            self._send_ack()
            self._handle_remote_fin()
        elif segment.fin and seq_lt(fin_seq, self.rcv_nxt):
            self._send_ack()

    def _deliver(self, data: bytes) -> None:
        self.rcv_nxt = seq_add(self.rcv_nxt, len(data))
        self.bytes_received += len(data)
        if self.first_data_rx is None:
            self.first_data_rx = self.sim.now
        self.last_data_rx = self.sim.now
        if self.on_data is not None:
            self.on_data(data)

    def _drain_ooo(self) -> None:
        while self.rcv_nxt in self._ooo:
            self._deliver(self._ooo.pop(self.rcv_nxt))

    def _handle_remote_fin(self) -> None:
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
            if self.on_close is not None:
                self.on_close("remote_fin")
        elif self.state == FIN_WAIT_1:
            self.state = CLOSING
        elif self.state == FIN_WAIT_2:
            self._enter_time_wait()

    def _enter_time_wait(self) -> None:
        self.state = TIME_WAIT
        self._rtx_deadline = None
        self._rtx_timer.cancel()
        self._time_wait_timer.start(self.time_wait_seconds)

    def _teardown(self, reason: str) -> None:
        previous = self.state
        self.state = CLOSED
        self._rtx_deadline = None
        self._delack_deadline = None
        self._rtx_timer.cancel()
        self._delack_timer.cancel()
        self._keepalive_timer.cancel()
        self._time_wait_timer.cancel()
        self.manager.forget(self)
        if previous != CLOSED and self.on_close is not None and reason != "remote_fin":
            self.on_close(reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpConnection {self.local_ip}:{self.local_port} -> "
            f"{self.remote_ip}:{self.remote_port} {self.state}>"
        )


class TcpManager:
    """Per-host TCP: connection table, listeners and demux."""

    def __init__(self, host: "Host"):
        self.host = host
        self.connections: Dict[Tuple[IPv4Address, int, IPv4Address, int], TcpConnection] = {}
        self.listeners: Dict[int, TcpListener] = {}
        self._ports = EphemeralPortAllocator()
        self.rsts_sent = 0
        #: Validate checksums on payload-bearing segments too.  The fast
        #: checksum makes this affordable; can be switched off for the very
        #: largest bulk benches.
        self.validate_payload_checksums = True

    # -- sockets --------------------------------------------------------------

    def listen(self, port: int, on_accept: Optional[Callable[[TcpConnection], None]] = None, iface_index: Optional[int] = None) -> TcpListener:
        if port in self.listeners:
            raise OSError(f"TCP port {port} already listening on {self.host.name}")
        listener = TcpListener(self, port, iface_index)
        listener.on_accept = on_accept
        self.listeners[port] = listener
        return listener

    def connect(
        self,
        dst_ip: IPv4Address,
        dst_port: int,
        src_port: int = 0,
        iface_index: Optional[int] = None,
        src_ip: Optional[IPv4Address] = None,
        mss: Optional[int] = None,
        use_window_scaling: bool = False,
    ) -> TcpConnection:
        if src_ip is None:
            if iface_index is not None:
                src_ip = self.host.interfaces[iface_index].ip
            else:
                src_ip = self.host.source_ip_for(dst_ip)
        if src_ip is None:
            raise OSError(f"no route to {dst_ip} from {self.host.name}")
        if src_port == 0:
            src_port = self._ports.allocate(
                lambda p: (src_ip, p, dst_ip, dst_port) not in self.connections
            )
        key = (src_ip, src_port, dst_ip, dst_port)
        if key in self.connections:
            raise OSError(f"connection {key} already exists")
        conn = TcpConnection(self, src_ip, src_port, dst_ip, dst_port, iface_index)
        if mss is not None:
            conn.mss = mss
            conn.cwnd = INITIAL_CWND_SEGMENTS * mss
        conn.use_window_scaling = use_window_scaling
        self.connections[key] = conn
        conn.open_active()
        return conn

    def forget(self, conn: TcpConnection) -> None:
        self.connections.pop(conn.key, None)

    def owns_flow(self, local_ip: IPv4Address, local_port: int, remote_ip: IPv4Address, remote_port: int) -> bool:
        """Does a connection or listener claim this inbound segment?"""
        if (local_ip, local_port, remote_ip, remote_port) in self.connections:
            return True
        return local_port in self.listeners

    # -- demux ---------------------------------------------------------------

    def handle_packet(self, packet: IPv4Packet, iface: Interface) -> None:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return
        if self.host.validate_checksums and segment.checksum is not None:
            if self.validate_payload_checksums or not segment.payload:
                if not segment.checksum_ok(packet.src, packet.dst):
                    self.host.checksum_drops += 1
                    return
        key = (packet.dst, segment.dst_port, packet.src, segment.src_port)
        conn = self.connections.get(key)
        if conn is not None:
            conn.segment_arrives(packet, segment)
            return
        if segment.syn and not segment.ack_flag:
            listener = self.listeners.get(segment.dst_port)
            if listener is not None and not listener.closed:
                if listener.iface_index is None or listener.iface_index == iface.index:
                    conn = TcpConnection(
                        self, packet.dst, segment.dst_port, packet.src, segment.src_port,
                        iface_index=listener.iface_index,
                    )
                    conn.use_window_scaling = listener.use_window_scaling
                    conn.rcv_wnd = listener.rcv_wnd
                    self.connections[key] = conn
                    conn.handle_inbound_syn(packet, segment)
                    return
        if not segment.rst:
            self._send_rst_for(packet, segment)

    def _send_rst_for(self, packet: IPv4Packet, segment: TcpSegment) -> None:
        self.rsts_sent += 1
        if segment.ack_flag:
            rst = TcpSegment(segment.dst_port, segment.src_port, seq=segment.ack, flags=TCP_RST)
        else:
            rst = TcpSegment(
                segment.dst_port,
                segment.src_port,
                seq=0,
                ack=seq_add(segment.seq, segment.seq_space()),
                flags=TCP_RST | TCP_ACK,
            )
        reply = IPv4Packet(packet.dst, packet.src, PROTO_TCP, rst)
        reply.fill_checksums()
        self.host.send_ip(reply)

    def handle_icmp_error(self, icmp: IcmpMessage, embedded: IPv4Packet, iface: Interface) -> None:
        segment = embedded.payload
        if not isinstance(segment, TcpSegment):
            return
        key = (embedded.src, segment.src_port, embedded.dst, segment.dst_port)
        conn = self.connections.get(key)
        if conn is None:
            return
        conn.handle_frag_needed(icmp)
        if conn.on_icmp_error is not None:
            conn.on_icmp_error(icmp, embedded)
