"""Minimal DCCP endpoints (RFC 4340): enough to attempt a connection.

Request → Response → Ack establishes; Data flows after that.  Receivers
verify the checksum, which covers an IPv4 pseudo-header — so a NAT that
rewrites addresses without fixing the DCCP checksum produces packets a real
endpoint discards.  That detail is what makes every gateway in the study
fail the DCCP test while 18 pass SCTP.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.netsim.node import Interface
from repro.packets.dccp import (
    DCCP_ACK,
    DCCP_DATA,
    DCCP_REQUEST,
    DCCP_RESET,
    DCCP_RESPONSE,
    DccpPacket,
)
from repro.packets.ipv4 import PROTO_DCCP, IPv4Packet
from repro.protocols.ports import EphemeralPortAllocator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.stack import Host

REQUEST_TIMEOUT = 1.0
MAX_REQUEST_RETRIES = 3

CLOSED = "CLOSED"
REQUESTING = "REQUESTING"
ESTABLISHED = "ESTABLISHED"


class DccpConnection:
    """One DCCP connection endpoint."""

    def __init__(
        self,
        manager: "DccpManager",
        local_ip: IPv4Address,
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
        iface_index: Optional[int] = None,
    ):
        self.manager = manager
        self.host = manager.host
        self.sim = manager.host.sim
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.iface_index = iface_index
        self.state = CLOSED
        self.seq = self.sim.rng.randrange(0, 1 << 48)
        self.peer_seq = 0
        self.service_code = 0
        self.on_established: Optional[Callable[["DccpConnection"], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_failed: Optional[Callable[[str], None]] = None
        self._retries = 0
        self._timer = self.sim.timer(self._on_timeout)

    @property
    def key(self) -> Tuple[IPv4Address, int, IPv4Address, int]:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    def _emit(self, packet_type: int, payload: bytes = b"", ack: Optional[int] = None) -> None:
        self.seq = (self.seq + 1) & 0xFFFFFFFFFFFF
        dccp = DccpPacket(
            self.local_port,
            self.remote_port,
            packet_type,
            self.seq,
            ack=ack,
            service_code=self.service_code,
            payload=payload,
        )
        packet = IPv4Packet(self.local_ip, self.remote_ip, PROTO_DCCP, dccp)
        packet.fill_checksums()
        self.host.send_ip_routed(packet, self.iface_index)

    def open_active(self, service_code: int = 0) -> None:
        self.service_code = service_code
        self.state = REQUESTING
        self._retries = 0
        self._send_request()

    def _send_request(self) -> None:
        self._emit(DCCP_REQUEST)
        self._timer.restart(REQUEST_TIMEOUT)

    def send(self, data: bytes) -> None:
        if self.state != ESTABLISHED:
            raise RuntimeError(f"connection not established (state={self.state})")
        self._emit(DCCP_DATA, payload=data)

    def reset(self) -> None:
        if self.state != CLOSED:
            self._emit(DCCP_RESET, ack=self.peer_seq)
        self._fail("reset")

    def _fail(self, reason: str) -> None:
        previous = self.state
        self.state = CLOSED
        self._timer.cancel()
        self.manager.forget(self)
        if previous != CLOSED and self.on_failed is not None:
            self.on_failed(reason)

    def _on_timeout(self) -> None:
        if self.state != REQUESTING:
            return
        self._retries += 1
        if self._retries > MAX_REQUEST_RETRIES:
            self._fail("timeout")
            return
        self._send_request()

    def handle(self, packet: IPv4Packet, dccp: DccpPacket) -> None:
        self.peer_seq = dccp.seq
        if dccp.packet_type == DCCP_RESPONSE and self.state == REQUESTING:
            self.state = ESTABLISHED
            self._timer.cancel()
            self._emit(DCCP_ACK, ack=dccp.seq)
            if self.on_established is not None:
                self.on_established(self)
        elif dccp.packet_type == DCCP_DATA and self.state == ESTABLISHED:
            if self.on_data is not None:
                self.on_data(dccp.payload)
        elif dccp.packet_type == DCCP_RESET:
            self._fail("reset_by_peer")


class DccpManager:
    """Per-host DCCP: connection table, listeners and demux."""

    def __init__(self, host: "Host"):
        self.host = host
        self.connections: Dict[Tuple[IPv4Address, int, IPv4Address, int], DccpConnection] = {}
        self.listeners: Dict[int, Callable[[DccpConnection], None]] = {}
        self._ports = EphemeralPortAllocator()
        self.checksum_failures = 0

    def listen(self, port: int, on_established: Optional[Callable[[DccpConnection], None]] = None) -> None:
        self.listeners[port] = on_established or (lambda conn: None)

    def connect(
        self,
        dst_ip: IPv4Address,
        dst_port: int,
        src_port: int = 0,
        iface_index: Optional[int] = None,
        src_ip: Optional[IPv4Address] = None,
        service_code: int = 0,
    ) -> DccpConnection:
        if src_ip is None:
            if iface_index is not None:
                src_ip = self.host.interfaces[iface_index].ip
            else:
                src_ip = self.host.source_ip_for(dst_ip)
        if src_ip is None:
            raise OSError(f"no route to {dst_ip} from {self.host.name}")
        if src_port == 0:
            src_port = self._ports.allocate(
                lambda p: (src_ip, p, dst_ip, dst_port) not in self.connections
            )
        conn = DccpConnection(self, src_ip, src_port, dst_ip, dst_port, iface_index)
        self.connections[conn.key] = conn
        conn.open_active(service_code)
        return conn

    def forget(self, conn: DccpConnection) -> None:
        self.connections.pop(conn.key, None)

    def handle_packet(self, packet: IPv4Packet, iface: Interface) -> None:
        dccp = packet.payload
        if not isinstance(dccp, DccpPacket):
            return
        if self.host.validate_checksums and dccp.checksum is not None:
            if not dccp.checksum_ok(packet.src, packet.dst):
                self.checksum_failures += 1
                return
        key = (packet.dst, dccp.dst_port, packet.src, dccp.src_port)
        conn = self.connections.get(key)
        if conn is not None:
            conn.handle(packet, dccp)
            return
        if dccp.packet_type == DCCP_REQUEST and dccp.dst_port in self.listeners:
            conn = DccpConnection(self, packet.dst, dccp.dst_port, packet.src, dccp.src_port, iface.index)
            conn.state = ESTABLISHED
            conn.peer_seq = dccp.seq
            self.connections[conn.key] = conn
            conn._emit(DCCP_RESPONSE, ack=dccp.seq)
            on_established = self.listeners[dccp.dst_port]
            on_established(conn)
