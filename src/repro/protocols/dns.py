"""DNS endpoints: an authoritative server and a stub resolver.

The testbed's ``hiit.fi`` DNS server is a :class:`DnsAuthoritativeServer`
serving a small zone over both UDP/53 and TCP/53.  The resolver issues
queries over either transport — `dig`-style — which is exactly what the
DNS-proxy tests in §3.2.3 need.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.packets.dns_codec import (
    QTYPE_A,
    RCODE_NXDOMAIN,
    DnsMessage,
    DnsRecord,
    frame_tcp,
    unframe_tcp,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.stack import Host
    from repro.protocols.tcp import TcpConnection

DNS_PORT = 53
#: Classic DNS-over-UDP payload ceiling (RFC 1035 §4.2.1); larger answers
#: are truncated over UDP and must be re-fetched over TCP.
UDP_PAYLOAD_LIMIT = 512


class DnsAuthoritativeServer:
    """Serves a static zone over UDP and TCP."""

    def __init__(self, host: "Host", zone: Optional[Dict[str, IPv4Address]] = None, iface_index: Optional[int] = None):
        self.host = host
        self.zone: Dict[str, IPv4Address] = dict(zone or {})
        #: Optional bulky records (e.g. TXT blobs standing in for DNSSEC
        #: material) that push responses past the UDP payload limit.
        self.txt_zone: Dict[str, bytes] = {}
        self.udp_queries = 0
        self.tcp_queries = 0
        self.truncated_responses = 0
        self._udp = host.udp.bind(DNS_PORT, iface_index)
        self._udp.on_receive = self._on_udp
        self._listener = host.tcp.listen(DNS_PORT, on_accept=self._on_tcp_accept, iface_index=iface_index)

    def add_record(self, name: str, address: IPv4Address) -> None:
        self.zone[name.lower().rstrip(".")] = address

    def add_txt_record(self, name: str, data: bytes) -> None:
        """Attach a large TXT blob to ``name`` (forces TCP for big answers)."""
        self.txt_zone[name.lower().rstrip(".")] = data

    def _answer(self, query: DnsMessage) -> DnsMessage:
        from repro.packets.dns_codec import QTYPE_TXT

        answers = []
        rcode = RCODE_NXDOMAIN
        for question in query.questions:
            name = question.name.lower().rstrip(".")
            address = self.zone.get(name)
            if address is not None and question.qtype == QTYPE_A:
                answers.append(DnsRecord.a(question.name, address))
                rcode = 0
            blob = self.txt_zone.get(name)
            if blob is not None and question.qtype in (QTYPE_A, QTYPE_TXT):
                answers.append(DnsRecord(question.name, QTYPE_TXT, 300, blob))
                rcode = 0
        response = query.response(answers, rcode=rcode)
        response.authoritative = True
        return response

    def _on_udp(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        try:
            query = DnsMessage.from_bytes(payload)
        except ValueError:
            return
        if query.is_response:
            return
        self.udp_queries += 1
        response = self._answer(query)
        raw = response.to_bytes()
        if len(raw) > UDP_PAYLOAD_LIMIT:
            # RFC 1035 §4.2.1: truncate and set TC; the client retries over TCP.
            truncated = query.response([], rcode=0)
            truncated.truncated = True
            truncated.authoritative = True
            raw = truncated.to_bytes()
            self.truncated_responses += 1
        self._udp.send_to(raw, src_ip, src_port)

    def _on_tcp_accept(self, conn: "TcpConnection") -> None:
        buffer = bytearray()

        def on_data(data: bytes) -> None:
            nonlocal buffer
            buffer += data
            messages, rest = unframe_tcp(bytes(buffer))
            buffer = bytearray(rest)
            for query in messages:
                if query.is_response:
                    continue
                self.tcp_queries += 1
                conn.send(frame_tcp(self._answer(query)))

        conn.on_data = on_data


class DnsStubResolver:
    """Issues one-shot queries over UDP or TCP, callback style."""

    def __init__(self, host: "Host"):
        self.host = host
        self._next_txid = 1

    def _txid(self) -> int:
        txid = self._next_txid
        self._next_txid = (self._next_txid + 1) & 0xFFFF or 1
        return txid

    def query_udp(
        self,
        server: IPv4Address,
        name: str,
        on_response: Callable[[Optional[DnsMessage]], None],
        timeout: float = 5.0,
        iface_index: Optional[int] = None,
    ) -> None:
        """Query over UDP; ``on_response(None)`` on timeout."""
        socket = self.host.udp.bind(0, iface_index)
        query = DnsMessage.query(name, txid=self._txid())
        done = {"fired": False}

        def finish(result: Optional[DnsMessage]) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            socket.close()
            on_response(result)

        def on_datagram(payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
            try:
                message = DnsMessage.from_bytes(payload)
            except ValueError:
                return
            if message.txid == query.txid and message.is_response:
                finish(message)

        socket.on_receive = on_datagram
        self.host.sim.timer(finish, None).start(timeout)
        socket.send_to(query.to_bytes(), server, DNS_PORT)

    def query_tcp(
        self,
        server: IPv4Address,
        name: str,
        on_response: Callable[[Optional[DnsMessage]], None],
        timeout: float = 10.0,
        iface_index: Optional[int] = None,
    ) -> None:
        """Query over TCP (RFC 1035 framing); ``on_response(None)`` on failure."""
        query = DnsMessage.query(name, txid=self._txid())
        done = {"fired": False}
        buffer = bytearray()

        def finish(result: Optional[DnsMessage]) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            if conn.state != "CLOSED":
                conn.abort()
            on_response(result)

        def on_established(c: "TcpConnection") -> None:
            c.send(frame_tcp(query))

        def on_data(data: bytes) -> None:
            nonlocal buffer
            buffer += data
            messages, rest = unframe_tcp(bytes(buffer))
            buffer = bytearray(rest)
            for message in messages:
                if message.txid == query.txid and message.is_response:
                    finish(message)
                    return

        def on_close(reason: str) -> None:
            if reason in ("refused", "timeout", "reset", "aborted"):
                finish(None)

        conn = self.host.tcp.connect(server, DNS_PORT, iface_index=iface_index)
        conn.on_established = on_established
        conn.on_data = on_data
        conn.on_close = on_close
        self.host.sim.timer(finish, None).start(timeout)

    def query_auto(
        self,
        server: IPv4Address,
        name: str,
        on_response: Callable[[Optional[DnsMessage]], None],
        timeout: float = 5.0,
        iface_index: Optional[int] = None,
    ) -> None:
        """`dig`-like behaviour: query over UDP, retry over TCP on TC=1.

        The resolver path a DNSSEC-era client exercises, and exactly the
        flow that breaks behind the 20 gateways whose proxies cannot speak
        DNS-over-TCP (§4.3).
        """

        def on_udp(message: Optional[DnsMessage]) -> None:
            if message is not None and message.truncated:
                self.query_tcp(server, name, on_response, timeout=timeout * 2, iface_index=iface_index)
                return
            on_response(message)

        self.query_udp(server, name, on_udp, timeout=timeout, iface_index=iface_index)
