"""Host-side ICMP: echo responder, error generation and error demux.

Incoming ICMP *errors* are matched back to the UDP socket or TCP connection
that owns the embedded flow, the way real stacks deliver e.g. "port
unreachable" to a connected UDP socket.  Hosts also *generate* port- and
protocol-unreachable errors, which the study relies on ("for UDP, even
detection of port reachability depends on ICMP messages").
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.netsim.node import Interface
from repro.packets.icmp import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    UNREACH_PORT,
    UNREACH_PROTO,
    IcmpMessage,
)
from repro.packets.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP, IPv4Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.stack import Host

IcmpObserver = Callable[[IcmpMessage, IPv4Packet, Interface], None]


class IcmpService:
    """Per-host ICMP behaviour."""

    def __init__(self, host: "Host"):
        self.host = host
        #: Generate unreachable errors for closed ports / unknown protocols.
        self.generate_errors = True
        #: Answer echo requests.
        self.answer_echo = True
        #: Called for every ICMP message this host receives.
        self.observers: List[IcmpObserver] = []
        self.errors_received = 0
        self.echo_replies_received = 0
        self._echo_waiters: dict = {}

    # -- receive ------------------------------------------------------------

    def handle_packet(self, packet: IPv4Packet, iface: Interface) -> None:
        message = packet.payload
        if not isinstance(message, IcmpMessage):
            return
        for observer in list(self.observers):
            observer(message, packet, iface)
        if message.icmp_type == ICMP_ECHO_REQUEST:
            if self.answer_echo and iface.ip is not None:
                reply = IcmpMessage.echo_reply(message.echo_ident, message.echo_seq, message.data)
                self.host.send_ip(IPv4Packet(iface.ip, packet.src, PROTO_ICMP, reply))
            return
        if message.icmp_type == ICMP_ECHO_REPLY:
            self.echo_replies_received += 1
            waiter = self._echo_waiters.pop((message.echo_ident, message.echo_seq), None)
            if waiter is not None:
                waiter(packet.src)
            return
        if message.is_error:
            self.errors_received += 1
            embedded = message.embedded
            if embedded is None:
                return
            if embedded.protocol == PROTO_UDP:
                self.host.udp.handle_icmp_error(message, embedded, iface)
            elif embedded.protocol == PROTO_TCP:
                self.host.tcp.handle_icmp_error(message, embedded, iface)

    # -- generate -------------------------------------------------------------

    def _send_error(self, icmp_type: int, code: int, offending: IPv4Packet, iface: Interface) -> None:
        if not self.generate_errors or iface.ip is None:
            return
        error = IcmpMessage.error(icmp_type, code, offending)
        self.host.send_ip(IPv4Packet(iface.ip, offending.src, PROTO_ICMP, error))

    def port_unreachable(self, offending: IPv4Packet, iface: Interface) -> None:
        self._send_error(ICMP_DEST_UNREACH, UNREACH_PORT, offending, iface)

    def protocol_unreachable(self, offending: IPv4Packet, iface: Interface) -> None:
        self._send_error(ICMP_DEST_UNREACH, UNREACH_PROTO, offending, iface)

    # -- ping -----------------------------------------------------------------

    def ping(
        self,
        dst: "IPv4Packet.dst",
        ident: int = 1,
        seq: int = 1,
        data: bytes = b"",
        on_reply: Optional[Callable] = None,
        record_route: bool = False,
    ) -> bool:
        """Send one echo request; ``on_reply(src_ip)`` fires on the reply."""
        src = self.host.source_ip_for(dst)
        if src is None:
            return False
        if on_reply is not None:
            self._echo_waiters[(ident, seq)] = on_reply
        request = IcmpMessage.echo_request(ident, seq, data)
        from repro.packets.ipv4 import RecordRouteOption

        packet = IPv4Packet(
            src,
            dst,
            PROTO_ICMP,
            request,
            record_route=RecordRouteOption() if record_route else None,
        )
        return self.host.send_ip(packet)
