"""Ephemeral port allocation shared by every transport."""

from __future__ import annotations

from typing import Callable

EPHEMERAL_LOW = 32768
EPHEMERAL_HIGH = 61000


class EphemeralPortAllocator:
    """Sequential ephemeral ports in the classic Linux range.

    Sequential (not random) allocation keeps simulations reproducible and
    matches the paper-era Linux default.  The allocator wraps around and
    skips ports the caller says are taken.
    """

    def __init__(self, low: int = EPHEMERAL_LOW, high: int = EPHEMERAL_HIGH):
        if not 0 < low < high <= 65535:
            raise ValueError(f"bad ephemeral range {low}..{high}")
        self.low = low
        self.high = high
        self._next = low

    def allocate(self, usable: Callable[[int], bool]) -> int:
        """Return the next port for which ``usable(port)`` is true."""
        span = self.high - self.low + 1
        for _ in range(span):
            port = self._next
            self._next += 1
            if self._next > self.high:
                self._next = self.low
            if usable(port):
                return port
        raise OSError("ephemeral port range exhausted")
