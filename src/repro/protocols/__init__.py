"""Host protocol stacks: everything an endpoint on the testbed speaks.

:class:`Host` is a multi-interface endpoint node with routing, UDP and TCP
sockets, ICMP handling, DHCP client/server services, DNS resolver/server and
minimal SCTP/DCCP endpoints — the union of what the paper's *test client*
and *test server* machines (Linux 2.6.26) needed to do.
"""

from repro.protocols.stack import Host, Route
from repro.protocols.udp import UdpSocket
from repro.protocols.tcp import TcpConnection, TcpListener, TCP_DEFAULT_MSS
from repro.protocols.dhcp import DhcpClientService, DhcpServerService, Lease
from repro.protocols.dns import DnsAuthoritativeServer, DnsStubResolver
from repro.protocols.sctp import SctpAssociation
from repro.protocols.dccp import DccpConnection

__all__ = [
    "Host",
    "Route",
    "UdpSocket",
    "TcpConnection",
    "TcpListener",
    "TCP_DEFAULT_MSS",
    "DhcpClientService",
    "DhcpServerService",
    "Lease",
    "DnsAuthoritativeServer",
    "DnsStubResolver",
    "SctpAssociation",
    "DccpConnection",
]
