"""UDP sockets.

Callback-driven (the simulator has no blocking I/O): a socket delivers
datagrams to ``on_receive`` and transport-related ICMP errors to
``on_icmp_error``.  Sockets may be pinned to one interface — the test client
binds one socket per home-gateway VLAN.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.netsim.node import Interface
from repro.packets.icmp import IcmpMessage
from repro.packets.ipv4 import PROTO_UDP, IPv4Packet
from repro.packets.udp import UdpDatagram
from repro.protocols.ports import EphemeralPortAllocator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.stack import Host

ReceiveCallback = Callable[[bytes, IPv4Address, int], None]
IcmpErrorCallback = Callable[[IcmpMessage, IPv4Packet], None]


class UdpSocket:
    """One bound UDP socket."""

    def __init__(self, manager: "UdpManager", port: int, iface_index: Optional[int]):
        self._manager = manager
        self.port = port
        self.iface_index = iface_index
        self.on_receive: Optional[ReceiveCallback] = None
        self.on_icmp_error: Optional[IcmpErrorCallback] = None
        #: Accept datagrams before the interface has an address (DHCP client).
        self.accept_unconfigured = False
        self.closed = False
        self.datagrams_received = 0

    @property
    def host(self) -> "Host":
        return self._manager.host

    def send_to(
        self,
        payload: bytes,
        dst_ip: IPv4Address,
        dst_port: int,
        ttl: int = 64,
        src_ip: Optional[IPv4Address] = None,
        record_route: bool = False,
    ) -> bool:
        """Send one datagram; returns False when unroutable."""
        if self.closed:
            raise RuntimeError("socket is closed")
        host = self._manager.host
        if src_ip is None:
            if self.iface_index is not None:
                src_ip = host.interfaces[self.iface_index].ip
            else:
                src_ip = host.source_ip_for(dst_ip)
        if src_ip is None:
            return False
        datagram = UdpDatagram(self.port, dst_port, payload)
        from repro.packets.ipv4 import RecordRouteOption

        packet = IPv4Packet(
            src_ip,
            dst_ip,
            PROTO_UDP,
            datagram,
            ttl=ttl,
            record_route=RecordRouteOption() if record_route else None,
        )
        return host.send_ip_routed(packet, self.iface_index)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._manager.unbind(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        iface = "any" if self.iface_index is None else f"eth{self.iface_index}"
        return f"<UdpSocket {self._manager.host.name}:{self.port} on {iface}>"


class UdpManager:
    """Per-host socket table and demultiplexer."""

    def __init__(self, host: "Host"):
        self.host = host
        self._sockets: Dict[int, List[UdpSocket]] = {}
        self._ports = EphemeralPortAllocator()
        #: Datagrams that arrived for a port nobody owns.
        self.unmatched = 0

    def bind(self, port: int = 0, iface_index: Optional[int] = None) -> UdpSocket:
        """Bind a socket; ``port=0`` picks an ephemeral port."""
        if port == 0:
            port = self._ports.allocate(lambda p: not self._conflicts(p, iface_index))
        elif self._conflicts(port, iface_index):
            raise OSError(f"UDP port {port} already bound on {self.host.name}")
        socket = UdpSocket(self, port, iface_index)
        self._sockets.setdefault(port, []).append(socket)
        return socket

    def _conflicts(self, port: int, iface_index: Optional[int]) -> bool:
        for existing in self._sockets.get(port, []):
            if existing.iface_index is None or iface_index is None:
                return True
            if existing.iface_index == iface_index:
                return True
        return False

    def unbind(self, socket: UdpSocket) -> None:
        listeners = self._sockets.get(socket.port, [])
        if socket in listeners:
            listeners.remove(socket)
        if not listeners:
            self._sockets.pop(socket.port, None)

    def socket_for(self, port: int, iface_index: Optional[int] = None) -> Optional[UdpSocket]:
        """First socket bound to ``port`` (matching the interface if given)."""
        for socket in self._sockets.get(port, []):
            if iface_index is None or socket.iface_index in (None, iface_index):
                return socket
        return None

    def has_port(self, port: int) -> bool:
        """Is any socket bound to ``port``?  (Used by the gateway demux.)"""
        return bool(self._sockets.get(port))

    def accepts_unconfigured(self, iface: Interface) -> bool:
        """Does any socket want traffic on this unconfigured interface?"""
        for listeners in self._sockets.values():
            for socket in listeners:
                if socket.accept_unconfigured and socket.iface_index in (None, iface.index):
                    return True
        return False

    def _match(self, port: int, iface: Interface) -> Optional[UdpSocket]:
        best = None
        for socket in self._sockets.get(port, []):
            if socket.iface_index is None:
                best = best or socket
            elif socket.iface_index == iface.index:
                return socket
        return best

    def handle_packet(self, packet: IPv4Packet, iface: Interface) -> None:
        datagram = packet.payload
        if not isinstance(datagram, UdpDatagram):
            return
        # RFC 768: a zero checksum means the transmitter generated none, so
        # there is nothing to verify (NATs forward it untouched, per RFC 3022).
        if self.host.validate_checksums and datagram.checksum not in (None, 0):
            if not datagram.checksum_ok(packet.src, packet.dst):
                self.host.checksum_drops += 1
                return
        socket = self._match(datagram.dst_port, iface)
        if socket is None:
            self.unmatched += 1
            self.host.icmp.port_unreachable(packet, iface)
            return
        socket.datagrams_received += 1
        if socket.on_receive is not None:
            socket.on_receive(datagram.payload, packet.src, datagram.src_port)

    def handle_icmp_error(self, icmp: IcmpMessage, embedded: IPv4Packet, iface: Interface) -> None:
        """Deliver an ICMP error to the socket that owns the embedded flow."""
        datagram = embedded.payload
        if not isinstance(datagram, UdpDatagram):
            return
        socket = self._match(datagram.src_port, iface)
        if socket is not None and socket.on_icmp_error is not None:
            socket.on_icmp_error(icmp, embedded)
