"""Minimal SCTP endpoints (RFC 4960): enough to attempt an association.

Implements the four-way handshake (INIT / INIT-ACK with a state cookie /
COOKIE-ECHO / COOKIE-ACK) and simple DATA/SACK exchange on a single stream.
Receivers verify the CRC-32c checksum and the verification tag, so a
middlebox that corrupts either is detected the way a real stack would
detect it.
"""

from __future__ import annotations

from ipaddress import IPv4Address
from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.netsim.node import Interface
from repro.packets.ipv4 import PROTO_SCTP, IPv4Packet
from repro.packets.sctp import (
    SCTP_ABORT,
    SCTP_COOKIE_ACK,
    SCTP_COOKIE_ECHO,
    SCTP_DATA,
    SCTP_INIT,
    SCTP_INIT_ACK,
    SCTP_SACK,
    SctpChunk,
    SctpPacket,
)
from repro.protocols.ports import EphemeralPortAllocator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.stack import Host

INIT_TIMEOUT = 1.0
MAX_INIT_RETRIES = 3

# Association states.
CLOSED = "CLOSED"
COOKIE_WAIT = "COOKIE_WAIT"
COOKIE_ECHOED = "COOKIE_ECHOED"
ESTABLISHED = "ESTABLISHED"


def _encode_init(tag: int, tsn: int) -> bytes:
    # initiate tag, a_rwnd, out streams, in streams, initial TSN
    return tag.to_bytes(4, "big") + (65536).to_bytes(4, "big") + (1).to_bytes(2, "big") + (1).to_bytes(2, "big") + tsn.to_bytes(4, "big")


def _decode_init(value: bytes) -> Tuple[int, int]:
    if len(value) < 16:
        raise ValueError("truncated INIT parameters")
    return int.from_bytes(value[0:4], "big"), int.from_bytes(value[12:16], "big")


class SctpAssociation:
    """One SCTP association endpoint."""

    def __init__(
        self,
        manager: "SctpManager",
        local_ip: IPv4Address,
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
        iface_index: Optional[int] = None,
    ):
        self.manager = manager
        self.host = manager.host
        self.sim = manager.host.sim
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.iface_index = iface_index
        self.state = CLOSED
        self.local_tag = self.sim.rng.randrange(1, 1 << 32)
        self.peer_tag = 0
        self.next_tsn = self.sim.rng.randrange(0, 1 << 32)
        self.cumulative_tsn: Optional[int] = None
        self.on_established: Optional[Callable[["SctpAssociation"], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_failed: Optional[Callable[[str], None]] = None
        self.data_acked = 0
        self._retries = 0
        self._timer = self.sim.timer(self._on_timeout)
        self._pending_cookie: Optional[bytes] = None

    @property
    def key(self) -> Tuple[IPv4Address, int, IPv4Address, int]:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    # -- sending ------------------------------------------------------------

    def _emit(self, chunks, tag: Optional[int] = None) -> None:
        packet_tag = self.peer_tag if tag is None else tag
        sctp = SctpPacket(self.local_port, self.remote_port, packet_tag, chunks)
        packet = IPv4Packet(self.local_ip, self.remote_ip, PROTO_SCTP, sctp)
        packet.fill_checksums()
        self.host.send_ip_routed(packet, self.iface_index)

    def open_active(self) -> None:
        self.state = COOKIE_WAIT
        self._retries = 0
        self._send_init()

    def _send_init(self) -> None:
        # INIT carries verification tag 0 (RFC 4960 §8.5.1).
        self._emit([SctpChunk(SCTP_INIT, _encode_init(self.local_tag, self.next_tsn))], tag=0)
        self._timer.restart(INIT_TIMEOUT)

    def send(self, data: bytes) -> None:
        if self.state != ESTABLISHED:
            raise RuntimeError(f"association not established (state={self.state})")
        tsn = self.next_tsn
        self.next_tsn = (self.next_tsn + 1) & 0xFFFFFFFF
        value = tsn.to_bytes(4, "big") + (1).to_bytes(2, "big") + (0).to_bytes(2, "big") + (0).to_bytes(4, "big") + data
        self._emit([SctpChunk(SCTP_DATA, value, flags=0x03)])

    def abort(self) -> None:
        if self.state != CLOSED:
            self._emit([SctpChunk(SCTP_ABORT)])
        self._fail("aborted")

    def _fail(self, reason: str) -> None:
        previous = self.state
        self.state = CLOSED
        self._timer.cancel()
        self.manager.forget(self)
        if previous != CLOSED and self.on_failed is not None:
            self.on_failed(reason)

    def _on_timeout(self) -> None:
        if self.state not in (COOKIE_WAIT, COOKIE_ECHOED):
            return
        self._retries += 1
        if self._retries > MAX_INIT_RETRIES:
            self._fail("timeout")
            return
        if self.state == COOKIE_WAIT:
            self._send_init()
        else:
            self._send_cookie_echo()

    def _send_cookie_echo(self) -> None:
        self._emit([SctpChunk(SCTP_COOKIE_ECHO, self._pending_cookie or b"")])
        self._timer.restart(INIT_TIMEOUT)

    # -- receiving -------------------------------------------------------------

    def handle(self, packet: IPv4Packet, sctp: SctpPacket) -> None:
        for chunk in sctp.chunks:
            if chunk.chunk_type == SCTP_INIT_ACK and self.state == COOKIE_WAIT:
                peer_tag, _tsn = _decode_init(chunk.value[:16])
                self.peer_tag = peer_tag
                self._pending_cookie = chunk.value[16:]
                self.state = COOKIE_ECHOED
                self._retries = 0
                self._send_cookie_echo()
            elif chunk.chunk_type == SCTP_COOKIE_ACK and self.state == COOKIE_ECHOED:
                self.state = ESTABLISHED
                self._timer.cancel()
                if self.on_established is not None:
                    self.on_established(self)
            elif chunk.chunk_type == SCTP_DATA and self.state == ESTABLISHED:
                tsn = int.from_bytes(chunk.value[0:4], "big")
                payload = chunk.value[12:]
                self.cumulative_tsn = tsn
                sack = tsn.to_bytes(4, "big") + (65536).to_bytes(4, "big") + (0).to_bytes(4, "big")
                self._emit([SctpChunk(SCTP_SACK, sack)])
                if self.on_data is not None:
                    self.on_data(payload)
            elif chunk.chunk_type == SCTP_SACK and self.state == ESTABLISHED:
                self.data_acked += 1
            elif chunk.chunk_type == SCTP_ABORT:
                self._fail("aborted_by_peer")


class SctpManager:
    """Per-host SCTP: association table, listeners and demux."""

    def __init__(self, host: "Host"):
        self.host = host
        self.associations: Dict[Tuple[IPv4Address, int, IPv4Address, int], SctpAssociation] = {}
        self.listeners: Dict[int, Callable[[SctpAssociation], None]] = {}
        self._ports = EphemeralPortAllocator()
        self.checksum_failures = 0

    def listen(self, port: int, on_established: Optional[Callable[[SctpAssociation], None]] = None) -> None:
        self.listeners[port] = on_established or (lambda assoc: None)

    def connect(
        self,
        dst_ip: IPv4Address,
        dst_port: int,
        src_port: int = 0,
        iface_index: Optional[int] = None,
        src_ip: Optional[IPv4Address] = None,
    ) -> SctpAssociation:
        if src_ip is None:
            if iface_index is not None:
                src_ip = self.host.interfaces[iface_index].ip
            else:
                src_ip = self.host.source_ip_for(dst_ip)
        if src_ip is None:
            raise OSError(f"no route to {dst_ip} from {self.host.name}")
        if src_port == 0:
            src_port = self._ports.allocate(
                lambda p: (src_ip, p, dst_ip, dst_port) not in self.associations
            )
        assoc = SctpAssociation(self, src_ip, src_port, dst_ip, dst_port, iface_index)
        self.associations[assoc.key] = assoc
        assoc.open_active()
        return assoc

    def forget(self, assoc: SctpAssociation) -> None:
        self.associations.pop(assoc.key, None)

    def handle_packet(self, packet: IPv4Packet, iface: Interface) -> None:
        sctp = packet.payload
        if not isinstance(sctp, SctpPacket):
            return
        if self.host.validate_checksums and sctp.checksum is not None and not sctp.checksum_ok():
            self.checksum_failures += 1
            return
        key = (packet.dst, sctp.dst_port, packet.src, sctp.src_port)
        assoc = self.associations.get(key)
        if assoc is not None:
            assoc.handle(packet, sctp)
            return
        # Passive open: an INIT for a listening port creates an association.
        init = next((c for c in sctp.chunks if c.chunk_type == SCTP_INIT), None)
        if init is None or sctp.dst_port not in self.listeners:
            return
        peer_tag, _peer_tsn = _decode_init(init.value[:16])
        assoc = SctpAssociation(self, packet.dst, sctp.dst_port, packet.src, sctp.src_port, iface.index)
        assoc.peer_tag = peer_tag
        self.associations[assoc.key] = assoc
        on_established = self.listeners[sctp.dst_port]

        def established(a: SctpAssociation) -> None:
            on_established(a)

        assoc.on_established = established
        # INIT-ACK: our tag/TSN plus an opaque state cookie.
        cookie = b"repro-cookie"
        assoc._emit([SctpChunk(SCTP_INIT_ACK, _encode_init(assoc.local_tag, assoc.next_tsn) + cookie)])
        assoc.state = "COOKIE_ACK_WAIT"

        # Complete on COOKIE-ECHO.
        original_handle = assoc.handle

        def handle(pkt: IPv4Packet, spkt: SctpPacket) -> None:
            if assoc.state == "COOKIE_ACK_WAIT":
                for chunk in spkt.chunks:
                    if chunk.chunk_type == SCTP_COOKIE_ECHO:
                        assoc.state = ESTABLISHED
                        assoc._emit([SctpChunk(SCTP_COOKIE_ACK)])
                        if assoc.on_established is not None:
                            assoc.on_established(assoc)
                        return
            original_handle(pkt, spkt)

        assoc.handle = handle  # type: ignore[method-assign]
