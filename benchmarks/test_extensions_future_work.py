"""Benches for the §5 future-work extensions.

Not paper figures — the paper explicitly defers these — but the study's
stated next steps, run across the same 34-device population: binding
creation rate, TCP/IP option handling, and STUN/hole-punching success rates.
"""

from collections import Counter

from bench_common import fresh_testbed
from conftest import write_artifact

from repro.core import BindingRateProbe, OptionsTest
from repro.core.runtime import SimTask, run_tasks
from repro.devices import CATALOG, catalog_profiles
from repro.testbed import Testbed
from repro.traversal import (
    HolePunchExperiment,
    IceLiteSession,
    StunClient,
    StunServer,
    TcpHolePunchExperiment,
    classify,
)


def test_binding_rate_sweep(benchmark):
    """§5: "measure the rate at which NATs are capable of creating new
    bindings" — a representative sample of the population."""
    tags = ["je", "dl1", "ng1", "smc", "bu1", "ls1"]

    def run():
        bed = Testbed.build(catalog_profiles(tags))
        return BindingRateProbe(offered_rates=(100, 400, 1600), burst_count=150).run_all(bed)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Binding-creation-rate sweep [new bindings/s]", "-" * 46]
    lines.append(f"{'tag':>5}  {'@100':>8}  {'@400':>8}  {'@1600':>8}  {'sustainable':>11}")
    for tag in tags:
        steps = {round(s.offered_rate): s.achieved_rate for s in results[tag].steps}
        lines.append(
            f"{tag:>5}  {steps[100]:8.0f}  {steps[400]:8.0f}  {steps[1600]:8.0f}  "
            f"{results[tag].sustainable_rate():11.0f}"
        )
    write_artifact("ext_binding_rate.txt", "\n".join(lines))
    # The paper never measured this; the catalog extrapolates setup rates by
    # device class.  The probe must rediscover that spread: weak boxes
    # saturate in the hundreds, the strong ones track the offered load.
    assert results["ls1"].saturation_rate() < 450
    assert results["smc"].saturation_rate() < 600
    assert results["bu1"].sustainable_rate() >= 350
    assert results["ng1"].saturation_rate() > results["ls1"].saturation_rate() * 3


def test_option_handling_population(benchmark):
    """§5: "investigate handling of TCP and IP options"."""
    def run():
        bed = fresh_testbed()
        return OptionsTest().run_all(bed)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    counts = Counter()
    for result in results.values():
        counts["ip_options_pass"] += result.ip_options_pass
        counts["record_route"] += result.record_route_recorded
        counts["tcp_options_preserved"] += bool(result.tcp_options_preserved)
    lines = ["TCP/IP option handling across the population", "-" * 46]
    for key, count in sorted(counts.items()):
        lines.append(f"  {key:<24} {count}/34")
    write_artifact("ext_options.txt", "\n".join(lines))
    # §4.4: few devices honor Record Route (owrt and to in the catalog).
    assert counts["record_route"] == 2
    # The catalog models no option-stripping 2010 devices; SYN options pass
    # wherever the SYN passes at all.
    assert counts["tcp_options_preserved"] == 34


def test_stun_and_hole_punching_rates(benchmark):
    """§5: "measuring the success rates of STUN ... and ICE"."""
    tags = ["al", "ap", "bu1", "dl1", "ed", "ng1", "smc", "ls2", "zy1", "we"]

    def run():
        bed = Testbed.build(catalog_profiles(tags))
        server = StunServer(bed.server)
        verdicts = {}
        for tag in tags:
            port = bed.port(tag)
            client = StunClient(bed.client, iface_index=port.client_iface_index)
            task = SimTask(bed.sim, classify(client, port.server_ip), name=f"stun:{tag}")
            run_tasks(bed.sim, [task])
            client.close()
            verdicts[tag] = task.result
        server.close()
        experiment = HolePunchExperiment(bed)
        outcomes = experiment.matrix(tags)
        experiment.close()
        return verdicts, outcomes

    verdicts, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    successes = [pair for pair, outcome in outcomes.items() if outcome.success]
    lines = ["STUN classification + hole-punching success", "-" * 46]
    for tag in tags:
        lines.append(f"{tag:>5}  {verdicts[tag].rfc3489_type}")
    lines.append("")
    lines.append(f"pairs punched: {len(successes)}/{len(outcomes)}")
    write_artifact("ext_traversal.txt", "\n".join(lines))

    # STUN must classify the catalog's symmetric NATs as symmetric.
    assert verdicts["ng1"].rfc3489_type == "symmetric"
    assert verdicts["smc"].rfc3489_type == "symmetric"
    # Both-endpoint-independent-mapping pairs punch; symmetric pairs don't.
    friendly = {tag for tag in tags if CATALOG[tag].nat.mapping.value == "endpoint_independent"}
    for (tag_a, tag_b), outcome in outcomes.items():
        if tag_a in friendly and tag_b in friendly:
            assert outcome.success, (tag_a, tag_b)
        if tag_a not in friendly and tag_b not in friendly:
            assert not outcome.success, (tag_a, tag_b)


def test_ice_and_tcp_punch_rates(benchmark):
    """§5's full traversal trio: ICE-lite (direct-or-relay) connectivity is
    total; TCP punching (STUNT-style) succeeds only between well-behaved
    mappings — the §2 observation that TCP traversal trails UDP."""
    tags = ["al", "bu1", "dl1", "ng1", "smc"]

    def run():
        ice_bed = Testbed.build(catalog_profiles(tags))
        session = IceLiteSession(ice_bed)
        ice_outcomes = session.matrix(tags)
        session.close()
        tcp_bed = Testbed.build(catalog_profiles(tags))
        experiment = TcpHolePunchExperiment(tcp_bed)
        tcp_outcomes = experiment.matrix = {
            pair: experiment.attempt(*pair) for pair in ice_outcomes
        }
        experiment.close()
        return ice_outcomes, tcp_outcomes

    ice_outcomes, tcp_outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["ICE-lite and TCP hole punching", "-" * 46]
    direct = relayed = tcp_ok = 0
    for pair in sorted(ice_outcomes):
        ice = ice_outcomes[pair]
        tcp = tcp_outcomes[pair]
        direct += ice.path == "direct"
        relayed += ice.path == "relayed"
        tcp_ok += tcp.success
        lines.append(f"  {pair[0]:>4} <-> {pair[1]:<4}  ice:{ice.path or 'FAIL':<8} tcp-punch:{'OK' if tcp.success else 'fail'}")
    lines.append("")
    lines.append(f"ice: {direct} direct, {relayed} relayed; tcp punching: {tcp_ok}/{len(tcp_outcomes)}")
    write_artifact("ext_ice_tcp.txt", "\n".join(lines))

    # ICE always connects (relay is the safety net).
    assert all(outcome.connected for outcome in ice_outcomes.values())
    assert relayed > 0 and direct > 0
    # TCP punching matches the UDP-punch friendliness boundary here.
    friendly = {tag for tag in tags if CATALOG[tag].nat.mapping.value == "endpoint_independent"}
    for (tag_a, tag_b), outcome in tcp_outcomes.items():
        expected = tag_a in friendly and tag_b in friendly
        assert outcome.success == expected, (tag_a, tag_b, outcome)
