"""Figure 5: UDP-3 — bidirectional traffic on the binding."""

import pytest

from bench_common import fresh_testbed, ordering_agreement, series_of
from conftest import write_artifact

from repro import paperdata
from repro.analysis import render_series
from repro.core import UdpTimeoutProbe


def test_fig5_udp3(benchmark, cache, quick_settings):
    results = benchmark.pedantic(
        lambda: cache.get_or_run(
            "udp3",
            lambda: UdpTimeoutProbe.udp3(
                repetitions=quick_settings["udp_repetitions"]
            ).run_all(fresh_testbed()),
        ),
        rounds=1,
        iterations=1,
    )
    series = series_of(results, "UDP-3", "s")
    stats = series.population()
    text = render_series(series, "Figure 5: UDP-3 bidirectional traffic [s]")
    text += f"\npaper: median={paperdata.FIG5_POP_MEDIAN} mean={paperdata.FIG5_POP_MEAN}"
    write_artifact("fig5_udp3.txt", text)

    assert stats["median"] == pytest.approx(paperdata.FIG5_POP_MEDIAN, rel=0.05)
    assert stats["mean"] == pytest.approx(paperdata.FIG5_POP_MEAN, rel=0.08)
    assert ordering_agreement(series, paperdata.FIG5_ORDER) > 0.85


def test_fig5_lengthening_devices(benchmark, cache, quick_settings):
    """§4.1: be1, dl10, ng3, ng4, be2, ng5 lengthen their timeouts vs UDP-2;
    no device shortens."""
    def produce():
        udp2 = cache.get_or_run(
            "udp2",
            lambda: UdpTimeoutProbe.udp2(repetitions=quick_settings["udp_repetitions"]).run_all(fresh_testbed()),
        )
        udp3 = cache.get_or_run(
            "udp3",
            lambda: UdpTimeoutProbe.udp3(repetitions=quick_settings["udp_repetitions"]).run_all(fresh_testbed()),
        )
        return udp2, udp3

    udp2, udp3 = benchmark.pedantic(produce, rounds=1, iterations=1)
    for tag in paperdata.UDP3_LENGTHENING_TAGS:
        assert udp3[tag].summary().median > udp2[tag].summary().median + 10, tag
    for tag in udp2:
        assert udp3[tag].summary().median >= udp2[tag].summary().median - 5.0, tag
