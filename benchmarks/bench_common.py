"""Helpers shared by the figure benches."""

from __future__ import annotations

from typing import Dict

from repro.analysis import kendall_tau
from repro.core.results import DeviceSeries
from repro.devices import catalog_profiles
from repro.testbed import Testbed


def fresh_testbed(seed: int = 0) -> Testbed:
    return Testbed.build(catalog_profiles(), seed=seed)


def series_of(results: Dict, name: str, unit: str, cutoff=None) -> DeviceSeries:
    series = DeviceSeries(name, unit)
    for tag, result in results.items():
        if result.samples:
            series.add(tag, result.summary())
        elif cutoff is not None:
            series.add_censored(tag, cutoff)
    return series


def ordering_agreement(series: DeviceSeries, paper_order) -> float:
    return kendall_tau(list(paper_order), series.ordered_tags())


def comparison_block(title: str, rows) -> str:
    lines = [title]
    for name, paper, measured in rows:
        lines.append(f"  {name:<38} paper={paper:>10}   measured={measured:>10}")
    return "\n".join(lines)
