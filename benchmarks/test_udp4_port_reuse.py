"""UDP-4 (§4.1 text): port preservation and binding-reuse behaviour.

Paper: 27 of 34 devices prefer the original source port; 23 of those reuse
an expired binding while 4 create a new one; 7 devices never preserve.
"""

from collections import Counter

from bench_common import fresh_testbed
from conftest import write_artifact

from repro import paperdata
from repro.core import UdpTimeoutProbe, analyze_port_behavior


def test_udp4_port_reuse(benchmark, cache, quick_settings):
    results = benchmark.pedantic(
        lambda: cache.get_or_run(
            "udp1",
            lambda: UdpTimeoutProbe.udp1(
                repetitions=quick_settings["udp_repetitions"]
            ).run_all(fresh_testbed()),
        ),
        rounds=1,
        iterations=1,
    )
    behaviors = {tag: analyze_port_behavior(result) for tag, result in results.items()}
    counts = Counter(b.category for b in behaviors.values())
    lines = ["UDP-4: binding and port-pair reuse behaviour", "-" * 46]
    for tag in sorted(behaviors):
        lines.append(f"{tag:>5}  {behaviors[tag].category}")
    lines.append("")
    lines.append(f"measured: {dict(counts)}")
    lines.append(
        f"paper:    {paperdata.UDP4_PRESERVE_AND_REUSE} preserve+reuse, "
        f"{paperdata.UDP4_PRESERVE_NO_REUSE} preserve+new, "
        f"{paperdata.UDP4_NEVER_PRESERVE} never preserve"
    )
    write_artifact("udp4_port_reuse.txt", "\n".join(lines))

    assert counts["preserves_and_reuses"] == paperdata.UDP4_PRESERVE_AND_REUSE
    assert counts["preserves_no_reuse"] == paperdata.UDP4_PRESERVE_NO_REUSE
    assert counts["new_binding_no_preservation"] == paperdata.UDP4_NEVER_PRESERVE
