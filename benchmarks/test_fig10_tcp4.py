"""Figure 10: TCP-4 — maximum concurrent TCP bindings to one server port."""

import pytest

from bench_common import fresh_testbed
from conftest import write_artifact

from repro import paperdata
from repro.analysis import kendall_tau, render_series
from repro.core import TcpBindingCapacityProbe
from repro.core.results import DeviceSeries, Summary, population_stats


def test_fig10_tcp4(benchmark, cache):
    results = benchmark.pedantic(
        lambda: cache.get_or_run(
            "tcp4", lambda: TcpBindingCapacityProbe().run_all(fresh_testbed())
        ),
        rounds=1,
        iterations=1,
    )
    series = DeviceSeries("TCP-4", "bindings")
    for tag, result in results.items():
        series.add(tag, Summary.of([float(result.max_bindings)]))
    stats = population_stats([float(r.max_bindings) for r in results.values()])
    text = render_series(series, "Figure 10: max TCP bindings to one server port", log_scale=True)
    text += (
        f"\npaper: median={paperdata.FIG10_POP_MEDIAN} mean={paperdata.FIG10_POP_MEAN} "
        f"min={paperdata.TCP4_MINIMUM_BINDINGS} (dl9, smc) max~{paperdata.TCP4_MAXIMUM_BINDINGS} (ng1, ap)"
    )
    write_artifact("fig10_tcp4.txt", text)

    assert results["dl9"].max_bindings == paperdata.TCP4_MINIMUM_BINDINGS
    assert results["smc"].max_bindings == paperdata.TCP4_MINIMUM_BINDINGS
    assert results["ap"].max_bindings == paperdata.TCP4_MAXIMUM_BINDINGS
    assert stats["median"] == pytest.approx(paperdata.FIG10_POP_MEDIAN, rel=0.02)
    assert stats["mean"] == pytest.approx(paperdata.FIG10_POP_MEAN, rel=0.02)
    assert kendall_tau(list(paperdata.FIG10_ORDER), series.ordered_tags()) > 0.97
    # §4.4: even the best devices stay around 1024 — far below the 16-bit
    # port space.
    assert stats["max"] <= 1100
