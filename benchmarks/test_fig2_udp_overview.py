"""Figure 2: UDP-1/2/3 medians side by side, ordered by the UDP-1 result.

This bench runs all three UDP timeout campaigns across the 34-device
population (they are cached for the per-figure benches that follow).
"""

from bench_common import fresh_testbed, ordering_agreement, series_of
from conftest import write_artifact

from repro import paperdata
from repro.analysis import render_series_multi
from repro.core import UdpTimeoutProbe


def _run_all_udp(cache, settings):
    def produce(variant, maker):
        return cache.get_or_run(
            variant,
            lambda: maker(repetitions=settings["udp_repetitions"]).run_all(fresh_testbed()),
        )

    return {
        "UDP-1": produce("udp1", UdpTimeoutProbe.udp1),
        "UDP-2": produce("udp2", UdpTimeoutProbe.udp2),
        "UDP-3": produce("udp3", UdpTimeoutProbe.udp3),
    }


def test_fig2_udp_overview(benchmark, cache, quick_settings):
    results = benchmark.pedantic(
        _run_all_udp, args=(cache, quick_settings), rounds=1, iterations=1
    )
    series = {
        name: series_of(data, name, "s") for name, data in results.items()
    }
    order = series["UDP-1"].ordered_tags()
    text = render_series_multi(series, "Figure 2: median UDP binding timeouts [s]", order=order)
    write_artifact("fig2_udp_overview.txt", text)

    # Shape: the UDP-1 ordering is Figure 2's x-axis (same as Figure 3).
    tau = ordering_agreement(series["UDP-1"], paperdata.FIG3_ORDER)
    assert tau > 0.95, f"UDP-1 ordering diverged from the paper (tau={tau:.3f})"
    # §4.1: UDP-2/3 grant longer timeouts than UDP-1 for the short-timeout
    # devices (ed/owrt/to/te move from 30 s to ~180 s).
    for tag in ("ed", "owrt", "to", "te"):
        assert series["UDP-2"].summaries[tag].median > 2 * series["UDP-1"].summaries[tag].median
