"""Figure 4: UDP-2 — single packet out, growing-gap response stream in."""

import pytest

from bench_common import fresh_testbed, ordering_agreement, series_of
from conftest import write_artifact

from repro import paperdata
from repro.analysis import render_series
from repro.core import UdpTimeoutProbe


def test_fig4_udp2(benchmark, cache, quick_settings):
    results = benchmark.pedantic(
        lambda: cache.get_or_run(
            "udp2",
            lambda: UdpTimeoutProbe.udp2(
                repetitions=quick_settings["udp_repetitions"]
            ).run_all(fresh_testbed()),
        ),
        rounds=1,
        iterations=1,
    )
    series = series_of(results, "UDP-2", "s")
    stats = series.population()
    text = render_series(series, "Figure 4: UDP-2 single packet out, stream in [s]")
    text += f"\npaper: median={paperdata.FIG4_POP_MEDIAN} mean={paperdata.FIG4_POP_MEAN} min={paperdata.UDP2_MINIMUM_SECONDS}"
    write_artifact("fig4_udp2.txt", text)

    assert stats["median"] == pytest.approx(paperdata.FIG4_POP_MEDIAN, rel=0.05)
    assert stats["mean"] == pytest.approx(paperdata.FIG4_POP_MEAN, rel=0.08)
    assert ordering_agreement(series, paperdata.FIG4_ORDER) > 0.85
    # Named anchors from §4.1.
    assert series.summaries["ap"].median == pytest.approx(paperdata.UDP2_MINIMUM_SECONDS, abs=3.0)
    assert series.summaries["be2"].median == pytest.approx(paperdata.UDP2_BE2_APPROX, abs=5.0)
    # The coarse-timer devices show the substantial IQR the paper remarks on.
    coarse_iqr = min(series.summaries[t].iqr for t in paperdata.COARSE_TIMER_TAGS)
    typical_iqr = series.summaries["dl2"].iqr
    assert coarse_iqr > typical_iqr
