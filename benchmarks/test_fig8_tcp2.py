"""Figure 8: TCP-2 — bulk TCP throughput, up/down/bidirectional.

Absolute rates are reported as fractions of the simulated 100 Mb/s line
(framing overhead makes ~95 Mb/s the achievable goodput ceiling); shape
anchors from §4.2 are asserted.
"""

import pytest

from bench_common import fresh_testbed
from conftest import write_artifact

from repro import paperdata
from repro.analysis import render_series_multi
from repro.core import ThroughputProbe
from repro.core.results import median


def run_throughput(cache, quick_settings):
    return cache.get_or_run(
        "tcp2",
        lambda: ThroughputProbe(
            transfer_bytes=quick_settings["transfer_bytes"]
        ).run_all(fresh_testbed()),
    )


def test_fig8_tcp2(benchmark, cache, quick_settings):
    results = benchmark.pedantic(
        run_throughput, args=(cache, quick_settings), rounds=1, iterations=1
    )
    probe = ThroughputProbe()
    series = {
        "down": probe.throughput_series(results, "download"),
        "up": probe.throughput_series(results, "upload"),
        "down(bi)": probe.throughput_series(results, "download_bidir"),
        "up(bi)": probe.throughput_series(results, "upload_bidir"),
    }
    order = series["down"].ordered_tags()
    text = render_series_multi(series, "Figure 8: TCP-2 throughput [Mb/s]", order=order)
    downs = {t: s.median for t, s in series["down"].summaries.items()}
    ups = {t: s.median for t, s in series["up"].summaries.items()}
    bidir = [s.median for s in series["down(bi)"].summaries.values()] + [
        s.median for s in series["up(bi)"].summaries.values()
    ]
    text += (
        f"\nmeasured: uni median down={median(list(downs.values())):.1f} up={median(list(ups.values())):.1f} "
        f"bidir median={median(bidir):.1f}"
        f"\npaper:    uni median ~{paperdata.TCP2_UNIDIR_MEDIAN_MBPS}, bidir ~{paperdata.TCP2_BIDIR_MEDIAN_MBPS}, "
        f"13 devices at line rate, dl10/ls1 ~6-8 Mb/s, smc 41/27"
    )
    write_artifact("fig8_tcp2.txt", text)

    # The two worst devices are dl10 and ls1, near the paper's 6-8 Mb/s.
    worst_two = order[:2]
    assert set(worst_two) == {"dl10", "ls1"}
    assert downs["dl10"] == pytest.approx(paperdata.TCP2_DL10_DOWN_MBPS, rel=0.25)
    assert downs["ls1"] == pytest.approx(paperdata.TCP2_LS1_DOWN_MBPS, rel=0.25)
    assert ups["ls1"] == pytest.approx(paperdata.TCP2_LS1_UP_MBPS, rel=0.25)
    # smc's up/down asymmetry survives measurement.
    assert ups["smc"] > downs["smc"] * 1.3
    # Thirteen devices sustain (near-)line-rate in both directions.
    line_rate = [t for t in downs if downs[t] > 85 and ups[t] > 85]
    assert len(line_rate) == paperdata.TCP2_LINE_RATE_DEVICES
    # Unidirectional medians land in the paper's ballpark.
    assert median(list(downs.values())) == pytest.approx(paperdata.TCP2_UNIDIR_MEDIAN_MBPS, rel=0.15)
    # Bidirectional collapse: the bidir median is far below the uni median.
    assert median(bidir) == pytest.approx(paperdata.TCP2_BIDIR_MEDIAN_MBPS, rel=0.25)
