"""PMTU black-hole census (§3.2.3's motivation, RFC 2923) across all 34.

Not a paper figure — the paper tests whether Frag Needed is *translated*
(Table 2) and warns that black holes follow when it is not.  This bench
closes the loop: it runs an actual constrained-path transfer through every
device and shows that the black-hole set is exactly the set of devices whose
Table-2 TCP Frag Needed cell is empty.
"""

from bench_common import fresh_testbed
from conftest import write_artifact

from repro.core import PmtuBlackholeTest
from repro.devices import CATALOG
from repro.devices.profile import IcmpAction


def test_pmtu_blackhole_census(benchmark):
    results = benchmark.pedantic(
        lambda: PmtuBlackholeTest().run_all(fresh_testbed()), rounds=1, iterations=1
    )
    lines = ["PMTU black-hole census (path MTU 1000, 120 KiB transfer)", "-" * 58]
    for tag in sorted(results):
        result = results[tag]
        if result.completed:
            lines.append(f"{tag:>5}  ok     {result.duration:6.2f}s  mss {result.mss_after}")
        else:
            lines.append(f"{tag:>5}  BLACK HOLE       mss {result.mss_after}")
    holes = sorted(tag for tag, r in results.items() if r.black_hole)
    lines.append("")
    lines.append(f"black holes: {len(holes)}/34: {' '.join(holes)}")
    lines.append("")
    lines.append("causes: Frag Needed dropped entirely, OR forwarded with an")
    lines.append("unrewritten embedded transport header on a non-port-preserving")
    lines.append("NAT (the host cannot match the error to its connection).")
    write_artifact("pmtu_blackhole.txt", "\n".join(lines))

    def expected_hole(profile) -> bool:
        if profile.icmp.tcp.get("frag_needed") is not IcmpAction.TRANSLATE:
            return True
        # Forwarded but useless: the embedded TCP header still carries the
        # external port, and without port preservation the client's stack
        # cannot attribute the error to any connection.  (Port-preserving
        # no-rewrite devices like ng3/ng4 get away with it by accident.)
        return (
            not profile.icmp.rewrites_embedded_transport
            and not profile.nat.port_preservation
        )

    expected_holes = {tag for tag, profile in CATALOG.items() if expected_hole(profile)}
    assert set(holes) == expected_holes
    # Every completing device learned the path MTU.
    for tag, result in results.items():
        if result.completed:
            assert result.mss_after == 960, tag
            assert result.duration < 5.0, tag
