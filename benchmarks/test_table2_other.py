"""Table 2: ICMP translation, SCTP/DCCP support, DNS over TCP/UDP."""

from bench_common import fresh_testbed
from conftest import write_artifact

from repro import paperdata
from repro.analysis import render_table2
from repro.core import DnsProxyTest, IcmpTranslationTest, TransportSupportTest


def _run_other(cache):
    icmp = cache.get_or_run("icmp", lambda: IcmpTranslationTest().run_all(fresh_testbed()))
    transports = cache.get_or_run(
        "transports", lambda: TransportSupportTest().run_all(fresh_testbed())
    )
    dns = cache.get_or_run("dns", lambda: DnsProxyTest().run_all(fresh_testbed()))
    return icmp, transports, dns


def test_table2_other_tests(benchmark, cache):
    icmp, transports, dns = benchmark.pedantic(_run_other, args=(cache,), rounds=1, iterations=1)
    text = render_table2(icmp, transports, dns)
    write_artifact("table2_other.txt", text)

    # SCTP: 18 of 34; DCCP: none (§4.3).
    sctp_pass = [t for t, protos in transports.items() if protos["sctp"].supported]
    dccp_pass = [t for t, protos in transports.items() if protos["dccp"].supported]
    assert len(sctp_pass) == paperdata.SCTP_PASSING_DEVICES
    assert len(dccp_pass) == paperdata.DCCP_PASSING_DEVICES
    # dl4/dl9/dl10/ls1 pass the packets entirely untranslated.
    untranslated = [t for t, protos in transports.items() if protos["sctp"].wire_view == "untranslated"]
    assert set(untranslated) == set(paperdata.FALLBACK_UNTRANSLATED_TAGS)
    ip_only = [t for t, protos in transports.items() if protos["sctp"].wire_view == "ip_only"]
    assert len(ip_only) == paperdata.FALLBACK_IP_ONLY_DEVICES
    # All SCTP passers are IP-only translators (the §4.3 observation).
    assert set(sctp_pass) <= set(ip_only)

    # ICMP: nw1 translates nothing; everyone else at least PortUnreach+TTL.
    assert icmp["nw1"].forwarded_kinds("udp") == []
    assert icmp["nw1"].forwarded_kinds("tcp") == []
    for tag, result in icmp.items():
        if tag in ("nw1", paperdata.ICMP_TCP_AS_RST_TAG):
            continue
        assert {"port_unreach", "ttl_exceeded"} <= set(result.forwarded_kinds("udp")), tag
        assert {"port_unreach", "ttl_exceeded"} <= set(result.forwarded_kinds("tcp")), tag
    # ls2 turns TCP-related errors into (invalid) RSTs.
    assert icmp[paperdata.ICMP_TCP_AS_RST_TAG].tcp_errors_become_rsts()
    # 16 of 34 do not correctly translate embedded transport headers.
    no_rewrite = [
        t for t, r in icmp.items()
        if not r.translates_embedded_transport()
    ]
    assert len(no_rewrite) == paperdata.ICMP_NO_EMBEDDED_REWRITE_DEVICES
    # zy1 and ls1 do not fix embedded IP checksums (among forwarding devices).
    bad_checksum = [
        t for t, r in icmp.items()
        if r.forwarded_kinds("udp") and not r.fixes_embedded_ip_checksum()
    ]
    assert set(bad_checksum) == set(paperdata.ICMP_BAD_EMBEDDED_IP_CHECKSUM_TAGS)

    # DNS: 14 accept TCP, 10 answer, ap forwards upstream via UDP.
    accepting = [t for t, r in dns.items() if r.accepts_tcp]
    answering = [t for t, r in dns.items() if r.answers_tcp]
    assert len(accepting) == paperdata.DNS_TCP_ACCEPTING_DEVICES
    assert len(answering) == paperdata.DNS_TCP_ANSWERING_DEVICES
    assert dns[paperdata.DNS_TCP_VIA_UDP_TAG].upstream_transport_for_tcp == "udp"
    others = [t for t in answering if t != paperdata.DNS_TCP_VIA_UDP_TAG]
    assert all(dns[t].upstream_transport_for_tcp == "tcp" for t in others)
    # Everyone proxies UDP DNS.
    assert all(r.answers_udp for r in dns.values())
