"""Figure 7: TCP-1 — idle TCP binding timeouts (24 h cutoff, log scale)."""

import pytest

from bench_common import fresh_testbed, series_of
from conftest import write_artifact

from repro import paperdata
from repro.analysis import kendall_tau, render_series
from repro.core import TcpTimeoutProbe
from repro.core.results import population_stats


def test_fig7_tcp1(benchmark, cache):
    results = benchmark.pedantic(
        lambda: cache.get_or_run(
            "tcp1", lambda: TcpTimeoutProbe().run_all(fresh_testbed())
        ),
        rounds=1,
        iterations=1,
    )
    series = series_of(results, "TCP-1", "s", cutoff=24 * 3600.0)
    text = render_series(series, "Figure 7: TCP-1 binding timeouts [s]", log_scale=True,
                         censored_label=">24h")
    text += (
        f"\npaper: median={paperdata.FIG7_POP_MEDIAN_MINUTES} min "
        f"mean={paperdata.FIG7_POP_MEAN_MINUTES} min, be1={paperdata.TCP1_SHORTEST_SECONDS}s, "
        f"7 devices >24h"
    )
    write_artifact("fig7_tcp1.txt", text)

    # The censored set is exactly the paper's seven.
    assert set(series.censored) == set(paperdata.TCP1_OVER_24H_TAGS)
    # Population stats in minutes, censored plotted at the 1440 min cutoff.
    minutes = [
        series.value_for_stats(tag, censored_as=24 * 3600.0) / 60.0
        for tag in list(series.summaries) + list(series.censored)
    ]
    stats = population_stats(minutes)
    assert stats["median"] == pytest.approx(paperdata.FIG7_POP_MEDIAN_MINUTES, rel=0.03)
    assert stats["mean"] == pytest.approx(paperdata.FIG7_POP_MEAN_MINUTES, rel=0.05)
    # be1: "consistently times out TCP bindings after 239 sec".
    assert series.summaries["be1"].median == pytest.approx(paperdata.TCP1_SHORTEST_SECONDS, abs=2.0)
    # Ordering agreement over the measured (non-censored) devices.
    measured_paper_order = [t for t in paperdata.FIG7_ORDER if t not in paperdata.TCP1_OVER_24H_TAGS]
    measured_ours = [t for t in series.ordered_tags() if t not in series.censored]
    assert kendall_tau(measured_paper_order, measured_ours) > 0.95
    # §4.4: half the devices time out in under an hour.
    under_hour = [t for t, s in series.summaries.items() if s.median < 3600.0]
    assert len(under_hour) >= 16
