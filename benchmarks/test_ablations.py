"""Ablations of the design choices DESIGN.md calls out.

1. Modified vs naive binary search on coarse-timer devices.
2. Timer granularity vs measurement IQR.
3. Window scaling off (the paper's config) vs on: delay ceiling.
4. Keepalive interval vs binding survival (the §4.4 design discussion).
"""

import pytest

from bench_common import fresh_testbed
from conftest import write_artifact

from repro.core import ThroughputProbe, UdpTimeoutProbe
from repro.core.runtime import SimTask, run_tasks
from repro.devices.profile import DeviceProfile, ForwardingPolicy, UdpTimeoutPolicy
from repro.testbed import Testbed


def _profile(tag, granularity=0.0, **kwargs):
    return DeviceProfile(
        tag, "Ablation", "X", "1",
        udp_timeouts=UdpTimeoutPolicy(60.0, 90.0, 90.0, timer_granularity=granularity),
        **kwargs,
    )


def test_ablation_timer_granularity_vs_iqr(benchmark):
    """A coarse timer wheel should visibly widen the measured IQR."""
    def run():
        profiles = [_profile("exact"), _profile("coarse", granularity=30.0)]
        bed = Testbed.build(profiles)
        return UdpTimeoutProbe.udp1(repetitions=7).run_all(bed)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = results["exact"].summary()
    coarse = results["coarse"].summary()
    text = (
        "Ablation: timer granularity vs IQR\n"
        f"  exact wheel : median={exact.median:7.1f}s iqr={exact.iqr:5.1f}s\n"
        f"  30 s wheel  : median={coarse.median:7.1f}s iqr={coarse.iqr:5.1f}s"
    )
    write_artifact("ablation_granularity.txt", text)
    assert coarse.iqr > exact.iqr + 1.0
    assert exact.iqr < 1.5


def test_ablation_modified_vs_naive_search(benchmark):
    """The naive stateful bisection skips the quiescence that makes each
    iteration identical to the first; on a device whose after-inbound
    timeout exceeds its outbound-only timeout it measures garbage."""
    from repro.core.udp_timeouts import UdpTimeoutProbe

    def run():
        # outbound-only 30 s, but a binding that saw a response lives 180 s.
        profile = DeviceProfile(
            "dev", "Ablation", "X", "1",
            udp_timeouts=UdpTimeoutPolicy(30.0, 180.0, 180.0),
        )
        proper = UdpTimeoutProbe.udp1(repetitions=1).run_all(Testbed.build([profile]))["dev"]
        naive = UdpTimeoutProbe.udp1(repetitions=1, quiescent=False).run_all(
            Testbed.build([profile])
        )["dev"]
        return proper, naive

    proper, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Ablation: modified (quiescent) vs naive binary search\n"
        f"  modified search : {proper.summary().median:7.1f}s (truth: 30 s)\n"
        f"  naive search    : {naive.summary().median:7.1f}s"
    )
    write_artifact("ablation_search.txt", text)
    assert proper.summary().median == pytest.approx(30.0, abs=1.0)
    # Without quiescence the residual (after-inbound, 180 s) binding pollutes
    # iterations: the naive estimate drifts upward.
    assert naive.summary().median > proper.summary().median + 5.0


def test_ablation_window_scaling_delay_ceiling(benchmark):
    """With wscale off (the paper's config) queuing delay is capped by the
    64 KB window; enabling it lets the buffer fill and delay grow."""
    def run():
        profile = DeviceProfile(
            "slow", "Ablation", "X", "1",
            forwarding=ForwardingPolicy(up_rate_bps=8e6, down_rate_bps=8e6, buffer_bytes=512 * 1024),
        )
        off_bed = Testbed.build([profile])
        off = ThroughputProbe(transfer_bytes=1024 * 1024).run_all(off_bed)["slow"]

        on_bed = Testbed.build([profile])
        big_window = 512 * 1024

        original_connect = on_bed.client.tcp.connect

        def scaled_connect(*args, **kwargs):
            kwargs.setdefault("use_window_scaling", True)
            conn = original_connect(*args, **kwargs)
            conn.rcv_wnd = big_window
            return conn

        original_listen = on_bed.server.tcp.listen

        def scaled_listen(*args, **kwargs):
            listener = original_listen(*args, **kwargs)
            listener.use_window_scaling = True
            listener.rcv_wnd = big_window
            return listener

        on_bed.client.tcp.connect = scaled_connect
        on_bed.server.tcp.listen = scaled_listen
        on = ThroughputProbe(transfer_bytes=1024 * 1024).run_all(on_bed)["slow"]
        return off, on

    off, on = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Ablation: window scaling vs queuing delay (8 Mb/s device, 512 KiB buffer)\n"
        f"  wscale off (paper): upload delay {off.upload.queuing_delay * 1e3:7.1f} ms\n"
        f"  wscale on         : upload delay {on.upload.queuing_delay * 1e3:7.1f} ms"
    )
    write_artifact("ablation_wscale.txt", text)
    assert on.upload.queuing_delay > off.upload.queuing_delay * 1.5


def test_ablation_keepalive_interval(benchmark):
    """§4.4: how short must a UDP keepalive be?  The observable that matters
    is *inbound reachability*: the server pushes an unsolicited message just
    before each keepalive is due; if the binding died in between, the push
    is dropped at the NAT.  Device under test: 90 s after-inbound timeout."""
    PUSHES = 5

    def run():
        outcomes = {}
        for interval in (30.0, 60.0, 120.0):
            profile = _profile("dev")
            bed = Testbed.build([profile])
            port = bed.port("dev")
            endpoint = {}
            server = bed.server.udp.bind(7000)
            server.on_receive = lambda data, ip, p: endpoint.update(addr=(ip, p))
            pushes_received = []
            sock = bed.client.udp.bind(0, port.client_iface_index)
            sock.on_receive = lambda data, ip, p: pushes_received.append(bed.sim.now)

            def task(interval=interval, sock=sock, port=port):
                for _ in range(PUSHES):
                    sock.send_to(b"keepalive", port.server_ip, 7000)
                    yield interval - 5.0
                    if "addr" in endpoint:  # unsolicited push toward the binding
                        server.send_to(b"push", *endpoint["addr"])
                    yield 5.0

            run_tasks(bed.sim, [SimTask(bed.sim, task(), name=f"ka{interval}")])
            outcomes[interval] = len(pushes_received)
            sock.close()
            server.close()
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ("Ablation: UDP keepalive interval vs inbound reachability "
            "(90 s binding timeout)\n")
    for interval, count in outcomes.items():
        text += f"  keepalive every {interval:5.0f} s : {count}/{PUSHES} pushes delivered\n"
    write_artifact("ablation_keepalive.txt", text.rstrip())
    assert outcomes[30.0] == PUSHES
    assert outcomes[60.0] == PUSHES
    assert outcomes[120.0] == 0  # binding always dead by push time
