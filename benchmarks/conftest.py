"""Shared infrastructure for the figure/table benches.

Each bench regenerates one of the paper's figures or tables: it runs the
measurement campaign for that artifact (timed via pytest-benchmark), renders
the series next to the paper's published numbers, writes the rendering to
``benchmarks/results/``, and asserts shape agreement (orderings via Kendall
tau, population stats within tolerance).

Expensive campaigns that feed several benches (the TCP-2/TCP-3 transfer
run feeds Figures 8 and 9) are cached per session: the first bench that
needs a result times its production; later benches reuse it.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_artifact(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    # Also emit to stdout so `pytest -s` shows the regenerated figure.
    print()
    print(text)


class SurveyCache:
    """Session-wide cache of measurement campaign results."""

    def __init__(self):
        self.store = {}

    def get_or_run(self, key: str, producer):
        if key not in self.store:
            self.store[key] = producer()
        return self.store[key]


@pytest.fixture(scope="session")
def cache():
    return SurveyCache()


@pytest.fixture(scope="session")
def quick_settings():
    """Campaign parameters for the benches: small repetitions and transfer
    sizes; the shapes are stable well below paper-scale iteration counts."""
    return {
        "udp_repetitions": 3,
        "udp5_repetitions": 1,
        "transfer_bytes": 1536 * 1024,
    }
