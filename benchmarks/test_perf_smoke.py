"""Simulator-core performance smoke bench.

Times a canned single-device TCP bulk transfer — the hot path the survey
spends most of its wall-clock in — and records events/sec plus scheduler
health counters to ``BENCH_core.json`` so future changes have a trajectory
to compare against.  Unlike the figure benches this one asserts nothing
about the paper; it only guards the engine's throughput.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.stats import write_bench_json
from repro.core.store import SCHEMA_VERSION, campaign_fingerprint
from repro.core.throughput import ThroughputProbe
from repro.devices import catalog_profiles
from repro.testbed import Testbed

BENCH_CORE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_core.json"
TRANSFER_BYTES = 512 * 1024


def _run_transfer():
    """One TCP-2 upload/download/bidir run through a single mid-range device."""
    profile = next(p for p in catalog_profiles() if p.tag == "dl1")
    bed = Testbed.build([profile], seed=0)
    probe = ThroughputProbe(transfer_bytes=TRANSFER_BYTES)
    results = probe.run_all(bed)
    return bed.sim, results[profile.tag]


def test_tcp_transfer_event_rate(benchmark):
    sim_holder = {}

    def run():
        sim, result = _run_transfer()
        sim_holder["sim"] = sim
        return result

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)

    # Sanity: the transfer actually moved data in all four directions.
    assert result.upload is not None and result.upload.bytes_moved >= TRANSFER_BYTES
    assert result.download is not None
    assert result.upload_bidir is not None and result.download_bidir is not None

    sim = sim_holder["sim"]
    wall = benchmark.stats.stats.mean
    profile = next(p for p in catalog_profiles() if p.tag == "dl1")
    payload = {
        "bench": "tcp2_single_device_transfer",
        "schema_version": SCHEMA_VERSION,
        "config_hash": campaign_fingerprint([profile], 0, {"transfer_bytes": TRANSFER_BYTES}),
        "transfer_bytes": TRANSFER_BYTES,
        "events_processed": sim.events_processed,
        "segments_modeled": sim.segments_modeled,
        "fastpath_events_saved": sim.fastpath_events_saved,
        "fastpath_windows": sim.fastpath_windows,
        "wall_seconds_mean": wall,
        "events_per_sec": sim.events_processed / wall if wall > 0 else 0.0,
        "stale_purges": sim.stale_purges,
        "stale_entries_purged": sim.stale_entries_purged,
        "throughput_mbps": result.as_mbps(),
    }
    write_bench_json(BENCH_CORE_PATH, payload)
    assert json.loads(BENCH_CORE_PATH.read_text())["events_processed"] > 0
