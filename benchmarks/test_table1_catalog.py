"""Table 1: the device inventory."""

from bench_common import fresh_testbed
from conftest import write_artifact

from repro import paperdata
from repro.analysis import render_table1
from repro.devices import catalog_profiles


def test_table1_inventory(benchmark):
    profiles = benchmark.pedantic(catalog_profiles, rounds=1, iterations=1)
    text = render_table1(profiles)
    write_artifact("table1_inventory.txt", text)
    assert len(profiles) == paperdata.DEVICE_COUNT
    vendors = {p.vendor for p in profiles}
    assert {"A-Link", "Apple", "Asus", "Belkin", "Buffalo", "D-Link", "Edimax",
            "Jensen", "Linksys", "Netgear", "Netwjork", "SMC", "Telewell",
            "Webee", "ZyXel"} == vendors


def test_table1_testbed_brings_up_all_34(benchmark):
    """Figure 1's bring-up across the full population is part of Table 1's
    reproduction: every device must DHCP both sides successfully."""
    bed = benchmark.pedantic(fresh_testbed, rounds=1, iterations=1)
    assert len(bed.tags()) == 34
    for tag in bed.tags():
        assert bed.port(tag).gateway.wan_ip is not None
        assert bed.client_ip(tag) is not None
