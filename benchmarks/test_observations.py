"""§4.4 population observations, reproduced from measured data."""

import pytest

from bench_common import fresh_testbed
from conftest import write_artifact

from repro import paperdata
from repro.compliance import check_device, population_summary
from repro.core import IcmpTranslationTest, TcpTimeoutProbe, UdpTimeoutProbe


def _collect(cache, quick_settings):
    udp1 = cache.get_or_run(
        "udp1",
        lambda: UdpTimeoutProbe.udp1(repetitions=quick_settings["udp_repetitions"]).run_all(fresh_testbed()),
    )
    udp3 = cache.get_or_run(
        "udp3",
        lambda: UdpTimeoutProbe.udp3(repetitions=quick_settings["udp_repetitions"]).run_all(fresh_testbed()),
    )
    tcp1 = cache.get_or_run("tcp1", lambda: TcpTimeoutProbe().run_all(fresh_testbed()))
    icmp = cache.get_or_run("icmp", lambda: IcmpTranslationTest().run_all(fresh_testbed()))
    return udp1, udp3, tcp1, icmp


def test_observations_and_compliance(benchmark, cache, quick_settings):
    udp1, udp3, tcp1, icmp = benchmark.pedantic(
        _collect, args=(cache, quick_settings), rounds=1, iterations=1
    )
    reports = {
        tag: check_device(tag, udp1=udp1[tag], tcp1=tcp1[tag], icmp=icmp[tag])
        for tag in udp1
    }
    summary = population_summary(reports)

    lines = ["§4.4 observations, measured", "-" * 32]
    lines.append(f"devices below RFC4787's 120 s UDP requirement: {summary['udp_below_required']:.0%} "
                 f"(paper: 'more than half')")
    lines.append(f"devices meeting RFC4787's 600 s recommendation: {summary['udp_meets_recommended']:.0%} "
                 f"(paper: only ls1)")
    lines.append(f"devices below RFC5382's 124 min TCP minimum: {summary['tcp_below_minimum']:.0%} "
                 f"(paper: 'more than half')")
    bidirectional_min = min(r.summary().median for r in udp3.values())
    lines.append(f"lowest timeout for a chatty binding: {bidirectional_min:.0f} s "
                 f"(paper: 54 s -> 15 s keepalives are overly aggressive)")
    two_hour_survivors = sum(
        1 for r in tcp1.values() if r.censored or (r.samples and r.summary().median > 7200)
    )
    lines.append(f"devices where a 2 h TCP keepalive suffices: {two_hour_survivors}/34 "
                 f"(paper: standardized keepalive interval unreliable)")
    text = "\n".join(lines)
    write_artifact("observations.txt", text)

    # Paper: >half below the 120 s UDP requirement; only ls1 above 600 s.
    assert summary["udp_below_required"] > 0.5
    assert summary["udp_meets_recommended"] == pytest.approx(1 / 34, abs=0.01)
    # Paper: half the devices time out TCP in <1 h, so >half miss 124 min.
    assert summary["tcp_below_minimum"] > 0.5
    # Paper: the lowest bidirectional-binding timeout is ~54 s... our UDP-3
    # population minimum sits near ng2's ~102 s (UDP-2's is the 54 s one).
    assert bidirectional_min >= 54.0
    # RFC 1122's 2 h keepalive fails on most devices.
    assert two_hour_survivors < 17


def test_no_device_wins_everywhere(benchmark, cache, quick_settings):
    """§4.4: "no single home gateway consistently performs better than
    others across all tests"."""
    udp1, _udp3, tcp1, icmp = benchmark.pedantic(
        _collect, args=(cache, quick_settings), rounds=1, iterations=1
    )
    from repro.devices.catalog import TCP_BINDING_CAPS

    def rank(values, reverse=True):
        ordered = sorted(values, key=values.get, reverse=reverse)
        return {tag: position for position, tag in enumerate(ordered)}

    udp_rank = rank({t: r.summary().median for t, r in udp1.items()})
    tcp_rank = rank({t: (r.summary().median if r.samples else 1e9) for t, r in tcp1.items()})
    cap_rank = rank({t: float(TCP_BINDING_CAPS[t]) for t in udp1})
    icmp_rank = rank({t: float(len(r.forwarded_kinds("udp")) + len(r.forwarded_kinds("tcp"))) for t, r in icmp.items()})
    top_quartile = 34 // 4
    winners = [
        tag
        for tag in udp1
        if all(r[tag] < top_quartile for r in (udp_rank, tcp_rank, cap_rank, icmp_rank))
    ]
    assert winners == [], f"devices unexpectedly best-in-class everywhere: {winners}"
