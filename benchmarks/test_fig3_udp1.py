"""Figure 3: UDP-1 — binding timeout after a single outbound packet."""

import pytest

from bench_common import fresh_testbed, ordering_agreement, series_of
from conftest import write_artifact

from repro import paperdata
from repro.analysis import render_series
from repro.core import UdpTimeoutProbe


def test_fig3_udp1(benchmark, cache, quick_settings):
    results = benchmark.pedantic(
        lambda: cache.get_or_run(
            "udp1",
            lambda: UdpTimeoutProbe.udp1(
                repetitions=quick_settings["udp_repetitions"]
            ).run_all(fresh_testbed()),
        ),
        rounds=1,
        iterations=1,
    )
    series = series_of(results, "UDP-1", "s")
    stats = series.population()
    text = render_series(series, "Figure 3: UDP-1 single outbound packet [s]")
    text += (
        f"\npaper: median={paperdata.FIG3_POP_MEDIAN} mean={paperdata.FIG3_POP_MEAN} "
        f"je={paperdata.UDP1_SHORTEST_SECONDS} ls1={paperdata.UDP1_LONGEST_SECONDS}"
    )
    write_artifact("fig3_udp1.txt", text)

    assert stats["median"] == pytest.approx(paperdata.FIG3_POP_MEDIAN, rel=0.05)
    assert stats["mean"] == pytest.approx(paperdata.FIG3_POP_MEAN, rel=0.08)
    assert series.summaries["ls1"].median == pytest.approx(paperdata.UDP1_LONGEST_SECONDS, rel=0.02)
    assert ordering_agreement(series, paperdata.FIG3_ORDER) > 0.95
    # §4.1: more than half below RFC 4787's 120 s; only ls1 over 600 s.
    below = [t for t, s in series.summaries.items() if s.median < paperdata.RFC4787_REQUIRED_SECONDS]
    over_recommended = [t for t, s in series.summaries.items() if s.median > paperdata.RFC4787_RECOMMENDED_SECONDS]
    assert len(below) > 17
    assert over_recommended == ["ls1"]
