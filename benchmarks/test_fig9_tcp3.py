"""Figure 9: TCP-3 — queuing and processing delay from payload timestamps.

Shape anchors from §4.2: devices that do well in TCP-2 also do well here;
bidirectional traffic increases delay, mildly for good devices and sharply
for the two worst (dl10, ls1).  Known deviation (see EXPERIMENTS.md): with
window scaling off, queue depth is capped by the 64 KB receive window, so
the *magnitude* of the worst bidirectional delays is smaller than the
paper's 291/400 ms.
"""

import pytest

from bench_common import fresh_testbed
from conftest import write_artifact
from test_fig8_tcp2 import run_throughput

from repro import paperdata
from repro.analysis import kendall_tau, render_series_multi
from repro.core import ThroughputProbe


def test_fig9_tcp3(benchmark, cache, quick_settings):
    results = benchmark.pedantic(
        run_throughput, args=(cache, quick_settings), rounds=1, iterations=1
    )
    probe = ThroughputProbe()
    series = {
        "down": probe.delay_series(results, "download"),
        "up": probe.delay_series(results, "upload"),
        "down(bi)": probe.delay_series(results, "download_bidir"),
        "up(bi)": probe.delay_series(results, "upload_bidir"),
    }
    order = sorted(
        series["down"].summaries,
        key=lambda t: max(series["down"].summaries[t].median, series["up"].summaries[t].median),
    )
    text = render_series_multi(series, "Figure 9: TCP-3 queuing delay [ms]", order=order)
    text += (
        f"\npaper anchors: dl10 download {paperdata.TCP3_DL10_DOWNLOAD_MS} -> "
        f"{paperdata.TCP3_DL10_BIDIR_MS} ms bidir; ls1 upload {paperdata.TCP3_LS1_UPLOAD_MS} -> "
        f"{paperdata.TCP3_LS1_BIDIR_MS} ms bidir; best devices +~2 ms bidir"
    )
    write_artifact("fig9_tcp3.txt", text)

    down = {t: s.median for t, s in series["down"].summaries.items()}
    up = {t: s.median for t, s in series["up"].summaries.items()}
    down_bi = {t: s.median for t, s in series["down(bi)"].summaries.items()}
    up_bi = {t: s.median for t, s in series["up(bi)"].summaries.items()}

    # The two largest delays belong to dl10 and ls1, as in the paper.
    assert set(order[-2:]) == {"dl10", "ls1"}
    # dl10's download delay is within reach of the paper's 74 ms; bidir grows.
    assert down["dl10"] == pytest.approx(paperdata.TCP3_DL10_DOWNLOAD_MS, rel=0.35)
    assert down_bi["dl10"] > down["dl10"] * 1.3
    # ls1's upload delay near 110 ms (window-capped); bidir grows.
    assert up["ls1"] == pytest.approx(paperdata.TCP3_LS1_UPLOAD_MS, rel=0.45)
    assert up_bi["ls1"] > up["ls1"] * 1.05
    # Best devices: small absolute delay, small bidirectional increase.
    best = order[:5]
    for tag in best:
        assert down[tag] < 15.0, (tag, down[tag])
        assert abs(down_bi[tag] - down[tag]) < 10.0, tag
    # §4.2: throughput rank and (inverse) delay rank correlate strongly.
    throughput_order = sorted(down, key=lambda t: results[t].download.throughput_bps, reverse=True)
    assert kendall_tau(throughput_order, order) > 0.5
