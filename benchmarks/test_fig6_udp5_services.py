"""Figure 6: UDP-5 — binding timeouts for different well-known services.

Paper: "most devices use a timeout scheme that is independent of the server
port.  Notable exception is dl8, which uses a shorter timeout for DNS."
"""

import pytest

from bench_common import fresh_testbed, series_of
from conftest import write_artifact

from repro import paperdata
from repro.analysis import render_series_multi
from repro.core import UdpServiceProbe


def test_fig6_udp5_services(benchmark, cache, quick_settings):
    results = benchmark.pedantic(
        lambda: cache.get_or_run(
            "udp5",
            lambda: UdpServiceProbe(
                repetitions=quick_settings["udp5_repetitions"]
            ).run_all(fresh_testbed()),
        ),
        rounds=1,
        iterations=1,
    )
    series = {
        service: series_of(results[service], service, "s")
        for service in paperdata.FIG6_SERVICES
    }
    order = series["http"].ordered_tags()
    text = render_series_multi(series, "Figure 6: UDP-5 per-service timeouts [s]", order=order)
    write_artifact("fig6_udp5_services.txt", text)

    exception = paperdata.UDP5_DNS_EXCEPTION_TAG
    for tag in order:
        per_service = [series[s].summaries[tag].median for s in paperdata.FIG6_SERVICES]
        spread = max(per_service) - min(per_service)
        if tag == exception:
            # dl8 shortens DNS dramatically relative to the other services.
            dns = series["dns"].summaries[tag].median
            http = series["http"].summaries[tag].median
            assert dns < http / 3, (dns, http)
        elif tag in paperdata.COARSE_TIMER_TAGS:
            # Coarse timers wobble across runs; allow one wheel period.
            assert spread <= 35.0, (tag, per_service)
        else:
            assert spread <= 5.0, (tag, per_service)
